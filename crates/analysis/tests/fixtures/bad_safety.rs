// Fixture: an `unsafe` token with no justifying comment is flagged;
// one with a justification on the same line or in the comment block
// directly above is not. (Never compiled — scanned as text.)

pub struct Cell(*mut u8);

unsafe impl Send for Cell {} // FLAG: no justification anywhere

impl Cell {
    pub fn read(&self) -> u8 {
        unsafe { *self.0 } // FLAG: bare block
    }

    pub fn write(&self, v: u8) {
        // SAFETY: callers hold the exclusive claim for this cell, so
        // the raw write cannot race.
        unsafe { *self.0 = v }
    }

    pub fn read_inline(&self) -> u8 {
        unsafe { *self.0 } // SAFETY: fixture cell is never shared.
    }

    // SAFETY: the pointer is only dereferenced by claim holders; the
    // attribute between the comment and the token is skipped.
    #[inline]
    pub unsafe fn raw(&self) -> *mut u8 {
        self.0
    }
}

// SAFETY: Cell owns its pointer exclusively, so reading it from
// another thread under the claim protocol is sound.
unsafe impl Sync for Cell {}
