// Fixture: ambient (unseeded) randomness is flagged — all RNG flows
// from seeded SplitMix64 streams so replay stays byte-identical.

use std::collections::hash_map::RandomState; // FLAG

pub fn jitter() -> u64 {
    let rng = thread_rng(); // FLAG
    rng.next()
}

pub fn seeded(seed: u64) -> u64 {
    // A seeded stream is the sanctioned path; nothing to flag here.
    let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 27)
}
