// Fixture: panicking operators in protocol paths are flagged — a lost
// datagram must surface as an error, not abort the rank.

pub fn decode(buf: &[u8]) -> u32 {
    let head = buf.first().unwrap(); // FLAG
    if *head > 4 {
        panic!("bad version"); // FLAG
    }
    let got: Result<u32, ()> = Ok(*head as u32);
    got.expect("checked above") // FLAG
}

pub fn decode_ok(buf: &[u8]) -> Result<u32, ()> {
    match buf.first() {
        Some(h) => Ok(*h as u32),
        None => Err(()),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        super::decode_ok(&[1]).unwrap(); // not flagged: test region
    }
}
