// Fixture: a well-behaved protocol module — every rule must pass.

use std::collections::BTreeMap;

pub struct Ledger {
    seen: BTreeMap<u32, u64>,
}

impl Ledger {
    pub fn digest(&self) -> u64 {
        // BTreeMap iteration order is the key order: deterministic.
        self.seen.values().fold(0u64, |a, v| a ^ *v)
    }

    pub fn record(&mut self, k: u32, v: u64) -> Result<(), ()> {
        match self.seen.get(&k) {
            Some(old) if *old != v => Err(()),
            _ => {
                self.seen.insert(k, v);
                Ok(())
            }
        }
    }
}

/// A seeded SplitMix64 step — the sanctioned randomness source.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    #[test]
    fn boundary_code_may_panic() {
        let mut s = super::Ledger {
            seen: std::collections::BTreeMap::new(),
        };
        s.record(1, 2).unwrap();
        assert_eq!(s.digest(), 2);
    }
}
