// Fixture: wall-clock reads in replay-critical code are flagged.

use std::time::{Instant, SystemTime}; // FLAG: both tokens, one line

pub fn stamp() -> u128 {
    let t = Instant::now(); // FLAG
    let _ = SystemTime::now(); // FLAG
    t.elapsed().as_nanos()
}

pub fn fine() -> u64 {
    // "Instant" inside a string or comment is not a wall-clock read.
    let s = "Instant::now()";
    s.len() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_are_fine_in_tests() {
        let _ = std::time::Instant::now(); // not flagged: test region
    }
}
