// Fixture: iterating a HashMap/HashSet in an ordering path is
// flagged — the iteration order is the hasher's, not the protocol's.

use std::collections::{HashMap, HashSet};

pub struct Book {
    seen: HashMap<u32, u64>,
    peers: HashSet<u32>,
}

impl Book {
    pub fn digest(&self) -> u64 {
        let mut acc = 0u64;
        for v in self.seen.values() { // FLAG
            acc ^= *v;
        }
        acc
    }

    pub fn fanout(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for p in &self.peers { // FLAG
            out.push(*p);
        }
        out
    }

    pub fn drain_all(&mut self) -> u64 {
        self.seen.drain().map(|(_, v)| v).sum() // FLAG
    }

    pub fn lookup(&self, k: u32) -> Option<u64> {
        self.seen.get(&k).copied() // not flagged: point lookup is fine
    }

    pub fn sorted(&self) -> Vec<u32> {
        let mut ks: Vec<u32> = self.seen.keys().copied().collect(); // mmpi-lint: allow(hash-iter)
        ks.sort_unstable();
        ks
    }

    pub fn sorted_above(&self) -> Vec<u32> {
        // mmpi-lint: allow(hash-iter)
        let mut ks: Vec<u32> = self.seen.keys().copied().collect();
        ks.sort_unstable();
        ks
    }
}
