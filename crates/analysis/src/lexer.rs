//! A line-oriented Rust lexer for lint rules.
//!
//! Not a parser: the rules in [`crate::rules`] only need to know, per
//! source line, (a) the code text with comments and literal *contents*
//! blanked out, (b) the comment text, and (c) whether the line sits
//! inside a `#[cfg(test)] mod` region. Blanking (rather than removing)
//! keeps every byte at its original column, so diagnostics point at the
//! real source.
//!
//! Handles the token classes that would otherwise produce false
//! positives: line and (nested) block comments, string / raw-string /
//! byte-string / char literals, and the `'a` lifetime vs `'a'` char
//! ambiguity.

/// One analyzed source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code text with comments removed and literal contents blanked.
    pub code: String,
    /// Concatenated comment text on this line (line, block, and doc).
    pub comment: String,
    /// `true` when the line is inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

impl Line {
    /// A line carrying no code at all (blank, or comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// A comment-only line (no code, some comment text).
    pub fn is_comment_only(&self) -> bool {
        self.is_code_blank() && !self.comment.trim().is_empty()
    }

    /// An attribute-only line (`#[...]` / `#![...]`, no trailing code).
    pub fn is_attr_only(&self) -> bool {
        let t = self.code.trim();
        t.starts_with("#[") || t.starts_with("#!")
    }
}

/// Lex a whole file into per-line code/comment views.
pub fn lex(src: &str) -> Vec<Line> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        Code,
        Block(u32),  // nested block comment, depth
        Str,         // "..."
        RawStr(u32), // r##"..."## with N hashes
        Char,        // '...'
    }

    let mut lines: Vec<Line> = Vec::new();
    let mut mode = Mode::Code;
    for raw in src.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let bytes: Vec<char> = raw.chars().collect();
        let n = bytes.len();
        let mut i = 0;
        while i < n {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(&raw[char_byte_idx(raw, i)..]);
                        break;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::Block(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    '"' => {
                        mode = Mode::Str;
                        code.push('"');
                    }
                    'r' | 'b' => {
                        // r"...", r#"..."#, b"...", br#"..."# raw/byte
                        // strings; plain identifiers otherwise.
                        if let Some((hashes, consumed)) = raw_str_open(&bytes, i) {
                            mode = Mode::RawStr(hashes);
                            for _ in 0..consumed {
                                code.push(' ');
                            }
                            i += consumed;
                            continue;
                        }
                        // b'x' byte char
                        if c == 'b' && next == Some('\'') && !prev_is_ident(&code) {
                            code.push(' ');
                            i += 1;
                            continue; // the '\'' is handled next round
                        }
                        code.push(c);
                    }
                    '\'' => {
                        // Char literal vs lifetime. A char literal is
                        // 'x' or '\..'; a lifetime is 'ident not closed
                        // by a quote.
                        if next == Some('\\') {
                            mode = Mode::Char;
                            code.push('\'');
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            // 'x' — but ''' (char of quote) is invalid
                            // anyway, and 'a' as lifetime-then-quote
                            // cannot appear.
                            code.push('\'');
                            code.push(' ');
                            code.push('\'');
                            i += 3;
                            continue;
                        } else {
                            // Lifetime: keep the quote, idents follow.
                            code.push('\'');
                        }
                    }
                    _ => code.push(c),
                },
                Mode::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(depth - 1)
                        };
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        mode = Mode::Block(depth + 1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    comment.push(c);
                    code.push(' ');
                }
                Mode::Str => match c {
                    '\\' => {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    '"' => {
                        mode = Mode::Code;
                        code.push('"');
                    }
                    _ => code.push(' '),
                },
                Mode::RawStr(hashes) => {
                    if c == '"' && closes_raw(&bytes, i, hashes) {
                        mode = Mode::Code;
                        for _ in 0..(1 + hashes) {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                        continue;
                    }
                    code.push(' ');
                }
                Mode::Char => match c {
                    '\\' => {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    '\'' => {
                        mode = Mode::Code;
                        code.push('\'');
                    }
                    _ => code.push(' '),
                },
            }
            i += 1;
        }
        // A string may span lines (multi-line string literal); block
        // comments span lines; both carry over via `mode`. Line comments
        // never do.
        lines.push(Line {
            code,
            comment,
            in_test: false,
        });
    }
    mark_test_regions(&mut lines);
    lines
}

/// Byte index of the `i`-th char of `s` (lines are short; O(n) is fine).
fn char_byte_idx(s: &str, i: usize) -> usize {
    s.char_indices().nth(i).map_or(s.len(), |(b, _)| b)
}

/// Does a raw/byte-string literal open at `i`? Returns `(hashes, chars
/// consumed)` for `r"`, `r#"`, `b"`, `br#"`, `rb"` forms.
fn raw_str_open(bytes: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    // optional b/r prefix pair in either order, at most one of each
    let mut saw_r = false;
    for _ in 0..2 {
        match bytes.get(j) {
            Some('r') if !saw_r => {
                saw_r = true;
                j += 1;
            }
            Some('b') if j == i => {
                j += 1;
            }
            _ => break,
        }
    }
    if j == i {
        return None;
    }
    // A preceding identifier char means this `r`/`b` is mid-identifier.
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return None;
    }
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        if hashes > 0 && !saw_r {
            return None; // b#" is not a thing
        }
        if !saw_r && hashes == 0 {
            // plain b"..." byte string: treat like a normal string open
            // (no hashes). Caller blanks it the same way.
            return Some((0, j - i + 1));
        }
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

/// Does the `"` at `i` close a raw string with `hashes` trailing `#`s?
fn closes_raw(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Mark lines inside `#[cfg(test)] mod ... { ... }` regions.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Find the following `mod` item (skipping further
            // attributes); functions under cfg(test) outside a mod are
            // rare and stay covered by rules (conservative).
            let mut j = i + 1;
            while j < lines.len()
                && (lines[j].is_code_blank() || lines[j].is_attr_only())
                && !lines[j].code.contains("mod ")
            {
                j += 1;
            }
            if j < lines.len() && contains_token(&lines[j].code, "mod") {
                // Brace-match from the mod's opening brace.
                let mut depth = 0i64;
                let mut opened = false;
                let mut k = j;
                while k < lines.len() {
                    for c in lines[k].code.chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    lines[k].in_test = true;
                    if opened && depth <= 0 {
                        break;
                    }
                    k += 1;
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Iterate the identifier tokens of a code line as `(column, token)`.
pub fn idents(code: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (b, c) in code.char_indices() {
        if c.is_alphanumeric() || c == '_' {
            if start.is_none() {
                start = Some(b);
            }
        } else if let Some(s) = start.take() {
            out.push((s, &code[s..b]));
        }
    }
    if let Some(s) = start {
        out.push((s, &code[s..]));
    }
    out
}

/// Does `code` contain `tok` as a standalone identifier token?
pub fn contains_token(code: &str, tok: &str) -> bool {
    idents(code).iter().any(|(_, t)| *t == tok)
}

/// The first char following the identifier token ending at byte `end`
/// (skipping spaces), if any.
pub fn char_after(code: &str, end: usize) -> Option<char> {
    code[end..].chars().find(|c| !c.is_whitespace())
}

/// The last non-space char before byte `start`, if any.
pub fn char_before(code: &str, start: usize) -> Option<char> {
    code[..start].chars().rev().find(|c| !c.is_whitespace())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = r#"let x = "Instant::now()"; // Instant in comment
let y = unsafe { get() }; /* unsafe in block */
"#;
        let lines = lex(src);
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].comment.contains("Instant"));
        assert!(contains_token(&lines[1].code, "unsafe"));
        assert!(lines[1].comment.contains("unsafe in block"));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\nInstant\n*/ code";
        let lines = lex(src);
        assert!(contains_token(&lines[0].code, "a"));
        assert!(contains_token(&lines[0].code, "b"));
        assert!(!contains_token(&lines[2].code, "Instant"));
        assert!(lines[2].comment.contains("Instant"));
        assert!(contains_token(&lines[3].code, "code"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"unsafe panic!\"#; after(s)";
        let lines = lex(src);
        assert!(!contains_token(&lines[0].code, "unsafe"));
        assert!(!contains_token(&lines[0].code, "panic"));
        assert!(contains_token(&lines[0].code, "after"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'q'; g()";
        let lines = lex(src);
        assert!(contains_token(&lines[0].code, "str"));
        assert!(contains_token(&lines[0].code, "g"));
        // the char literal content is blanked; the lifetimes are not
        // mistaken for an unterminated char that would swallow the rest
        assert!(!contains_token(&lines[0].code, "q"));
    }

    #[test]
    fn char_escape_literal() {
        let src = "let c = '\\n'; h()";
        let lines = lex(src);
        assert!(contains_token(&lines[0].code, "h"));
    }

    #[test]
    fn test_regions_are_marked() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let lines = lex(src);
        assert!(!lines[0].in_test);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn idents_with_columns() {
        let v = idents("self.seen_max.keys()");
        let names: Vec<&str> = v.iter().map(|(_, t)| *t).collect();
        assert_eq!(names, ["self", "seen_max", "keys"]);
    }
}
