//! `lint.toml` loading.
//!
//! The container builds offline, so instead of a `toml` dependency this
//! module parses the small TOML subset the config actually uses:
//! comments, `[table]` / `[[array-of-tables]]` headers, and
//! `key = string | integer | bool | [string, ...]` pairs. Anything
//! outside that subset is a hard error — better to reject a config
//! construct than to silently ignore an allowlist entry.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value (subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An array of strings.
    Arr(Vec<String>),
}

impl Value {
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[String]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// A `key = value` table.
pub type Table = BTreeMap<String, Value>;

/// Configuration error with line context.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// One lint rule's file scope and token list.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Workspace-relative path prefixes the rule applies to.
    pub include: Vec<String>,
    /// Path prefixes exempt from the rule (on top of global excludes).
    pub exclude: Vec<String>,
    /// Rule-specific token list (see `rules.rs` for the grammar:
    /// `.method`, `macro!`, or a bare identifier).
    pub tokens: Vec<String>,
    /// Skip `#[cfg(test)]` regions and `tests/` files.
    pub skip_tests: bool,
}

/// One reviewed exception: pins the rule's violation count for a file.
///
/// `count` is an *exact* budget, not a cap — the lint fails when a file
/// gains a violation (regression) **and** when it loses one (stale
/// budget; ratchet it down so the exception list never overstates the
/// debt). Every entry must say why it exists.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule name the exception applies to.
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// Exact number of tolerated violations.
    pub count: usize,
    /// Why the exception is sound (required; surfaced in reports).
    pub reason: String,
}

/// The whole `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directory roots to scan, workspace-relative.
    pub roots: Vec<String>,
    /// Path prefixes never scanned (fixtures, generated code).
    pub exclude: Vec<String>,
    /// Per-rule configuration, keyed by rule name.
    pub rules: BTreeMap<String, RuleConfig>,
    /// Reviewed exceptions.
    pub allows: Vec<AllowEntry>,
}

impl Config {
    /// Parse a `lint.toml` document.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        // Current insertion target: None = top level (rejected),
        // Some(path) = the open [table] or [[array-of-tables]] entry.
        enum Target {
            Scan,
            Rule(String),
            Allow(Table),
        }
        let mut target: Option<Target> = None;

        let flush = |cfg: &mut Config, target: &mut Option<Target>| -> Result<(), ConfigError> {
            if let Some(Target::Allow(t)) = target.take() {
                cfg.allows.push(allow_from_table(&t)?);
            }
            Ok(())
        };

        // Join multi-line arrays into logical lines first: a `key = [`
        // value continues until its brackets balance.
        let mut logical: Vec<(usize, String)> = Vec::new();
        for (ln, raw) in src.lines().enumerate() {
            let piece = strip_comment(raw).trim().to_string();
            if piece.is_empty() {
                continue;
            }
            if let Some((_, open)) = logical.last_mut().filter(|(_, l)| !brackets_balance(l)) {
                open.push(' ');
                open.push_str(&piece);
            } else {
                logical.push((ln, piece));
            }
        }
        if let Some((ln, open)) = logical.last().filter(|(_, l)| !brackets_balance(l)) {
            return Err(ConfigError(format!(
                "line {}: unterminated array `{}`",
                ln + 1,
                open
            )));
        }

        for (ln, line) in logical {
            let err = |m: String| ConfigError(format!("line {}: {}", ln + 1, m));
            if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                flush(&mut cfg, &mut target).map_err(|e| err(e.0))?;
                if header.trim() != "allow" {
                    return Err(err(format!("unknown array-of-tables [[{header}]]")));
                }
                target = Some(Target::Allow(Table::new()));
            } else if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                flush(&mut cfg, &mut target).map_err(|e| err(e.0))?;
                let header = header.trim();
                if header == "scan" {
                    target = Some(Target::Scan);
                } else if let Some(rule) = header.strip_prefix("rules.") {
                    target = Some(Target::Rule(rule.to_string()));
                } else {
                    return Err(err(format!("unknown table [{header}]")));
                }
            } else if let Some(eq) = line.find('=') {
                let key = line[..eq].trim().to_string();
                let value = parse_value(line[eq + 1..].trim()).map_err(&err)?;
                match &mut target {
                    None => return Err(err(format!("key `{key}` outside any table"))),
                    Some(Target::Scan) => match key.as_str() {
                        "roots" => {
                            cfg.roots = value
                                .as_arr()
                                .ok_or_else(|| err("roots: want array".into()))?
                                .to_vec();
                        }
                        "exclude" => {
                            cfg.exclude = value
                                .as_arr()
                                .ok_or_else(|| err("exclude: want array".into()))?
                                .to_vec();
                        }
                        k => return Err(err(format!("unknown [scan] key `{k}`"))),
                    },
                    Some(Target::Rule(name)) => {
                        let rc = cfg.rules.entry(name.clone()).or_default();
                        match key.as_str() {
                            "include" => {
                                rc.include = value
                                    .as_arr()
                                    .ok_or_else(|| err("include: want array".into()))?
                                    .to_vec();
                            }
                            "exclude" => {
                                rc.exclude = value
                                    .as_arr()
                                    .ok_or_else(|| err("exclude: want array".into()))?
                                    .to_vec();
                            }
                            "tokens" => {
                                rc.tokens = value
                                    .as_arr()
                                    .ok_or_else(|| err("tokens: want array".into()))?
                                    .to_vec();
                            }
                            "skip-tests" => {
                                rc.skip_tests = matches!(value, Value::Bool(true));
                            }
                            k => return Err(err(format!("unknown rule key `{k}`"))),
                        }
                    }
                    Some(Target::Allow(t)) => {
                        t.insert(key, value);
                    }
                }
            } else {
                return Err(err(format!("unparseable line `{line}`")));
            }
        }
        flush(&mut cfg, &mut target)?;
        Ok(cfg)
    }
}

fn allow_from_table(t: &Table) -> Result<AllowEntry, ConfigError> {
    let get_str = |k: &str| -> Result<String, ConfigError> {
        t.get(k)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ConfigError(format!("[[allow]] entry missing string key `{k}`")))
    };
    let entry = AllowEntry {
        rule: get_str("rule")?,
        path: get_str("path")?,
        count: t
            .get("count")
            .and_then(Value::as_int)
            .ok_or_else(|| ConfigError("[[allow]] entry missing integer `count`".into()))?
            as usize,
        reason: get_str("reason")?,
    };
    if entry.reason.trim().is_empty() {
        return Err(ConfigError(format!(
            "[[allow]] for {} in {} has an empty reason — exceptions must be justified",
            entry.rule, entry.path
        )));
    }
    Ok(entry)
}

/// Do `[`/`]` match up outside quotes? Used to join multi-line arrays.
fn brackets_balance(line: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in line.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(s: &str) -> Result<Value, String> {
    if let Some(body) = s.strip_prefix('"').and_then(|x| x.strip_suffix('"')) {
        return Ok(Value::Str(body.to_string()));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Some(body) = s.strip_prefix('[').and_then(|x| x.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_commas(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(x) => items.push(x),
                _ => return Err(format!("array element `{part}` is not a string")),
            }
        }
        return Ok(Value::Arr(items));
    }
    Err(format!("unparseable value `{s}`"))
}

/// Split on commas outside quotes (arrays stay single-line).
fn split_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let src = r#"
# comment
[scan]
roots = ["crates", "src"]
exclude = ["crates/analysis/tests/fixtures"]

[rules.wall-clock]
include = ["crates/wire/src"]
tokens = ["Instant", "SystemTime"]

[rules.panic-path]
include = ["crates/transport/src"]
tokens = [".unwrap", "panic!"]
skip-tests = true

[[allow]]
rule = "wall-clock"
path = "crates/transport/src/udp.rs"
count = 5
reason = "the UDP pump is wall time by definition"
"#;
        let cfg = Config::parse(src).unwrap();
        assert_eq!(cfg.roots, ["crates", "src"]);
        assert_eq!(cfg.rules["wall-clock"].tokens, ["Instant", "SystemTime"]);
        assert!(cfg.rules["panic-path"].skip_tests);
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].count, 5);
    }

    #[test]
    fn rejects_unreasoned_allow() {
        let src = "[[allow]]\nrule = \"x\"\npath = \"y\"\ncount = 1\nreason = \"  \"\n";
        assert!(Config::parse(src).is_err());
    }

    #[test]
    fn rejects_unknown_tables_and_keys() {
        assert!(Config::parse("[mystery]\n").is_err());
        assert!(Config::parse("[scan]\nbogus = 3\n").is_err());
        assert!(Config::parse("dangling = true\n").is_err());
    }
}
