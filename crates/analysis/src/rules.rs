//! The lint rules and the engine that drives them.
//!
//! Five rules, each enforcing one of the repo's standing invariants
//! (`docs/INVARIANTS.md` is the prose version):
//!
//! | rule | invariant |
//! |---|---|
//! | `safety-comment` | every `unsafe` carries an adjacent `SAFETY:` argument |
//! | `wall-clock` | no `Instant`/`SystemTime` outside the wall-clock backends |
//! | `hash-iter` | no hash-order iteration in wire/transport ordering paths |
//! | `ambient-rng` | all randomness flows from seeded streams |
//! | `panic-path` | no `panic!`/`unwrap`/`expect` in protocol paths |
//!
//! Exceptions are explicit: an inline `mmpi-lint: allow(<rule>)`
//! comment on (or directly above) the offending line, or an exact-count
//! `[[allow]]` budget in `lint.toml` — both carry a reason a reviewer
//! signed off on.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::config::{Config, RuleConfig};
use crate::lexer::{char_after, char_before, idents, lex, Line};

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule name.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

/// The lint outcome for a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that survived inline allows and budgets.
    pub violations: Vec<Violation>,
    /// Budget mismatches (stale or missing `[[allow]]` entries).
    pub budget_errors: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Did the workspace lint clean?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.budget_errors.is_empty()
    }

    /// Render every finding, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!("{}:{}: [{}] {}\n", v.path, v.line, v.rule, v.msg));
        }
        for b in &self.budget_errors {
            out.push_str(&format!("budget: {b}\n"));
        }
        out
    }
}

/// Names of every implemented rule (order = report order).
pub const RULE_NAMES: [&str; 5] = [
    "safety-comment",
    "wall-clock",
    "hash-iter",
    "ambient-rng",
    "panic-path",
];

/// Run the configured rules over every `.rs` file under the config's
/// scan roots, resolve inline allows and budgets, and report.
pub fn run(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for r in &cfg.roots {
        collect_rs_files(&root.join(r), &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut raw: Vec<Violation> = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        if cfg.exclude.iter().any(|e| rel.starts_with(e.as_str())) {
            continue;
        }
        scanned += 1;
        let src = std::fs::read_to_string(file)?;
        let lines = lex(&src);
        for rule in RULE_NAMES {
            let Some(rc) = cfg.rules.get(rule) else {
                continue;
            };
            if !applies(rc, &rel) {
                continue;
            }
            let vs = match rule {
                "safety-comment" => safety_comment(&rel, &lines),
                "wall-clock" | "ambient-rng" | "panic-path" => {
                    token_ban(rule_static(rule), rc, &rel, &lines)
                }
                "hash-iter" => hash_iter(&rel, &lines),
                _ => unreachable!("rule names are closed"),
            };
            raw.extend(vs);
        }
    }

    // Inline allows: `mmpi-lint: allow(rule)` on the line or directly
    // above it suppresses the violation at that site.
    let mut kept: Vec<Violation> = Vec::new();
    let mut lex_cache: BTreeMap<String, Vec<Line>> = BTreeMap::new();
    for v in raw {
        let lines = lex_cache.entry(v.path.clone()).or_insert_with(|| {
            let src = std::fs::read_to_string(root.join(&v.path)).unwrap_or_default();
            lex(&src)
        });
        if inline_allowed(lines, v.line, v.rule) {
            continue;
        }
        kept.push(v);
    }

    // Budgets: exact per-(rule, file) counts from [[allow]].
    let mut report = Report {
        files_scanned: scanned,
        ..Report::default()
    };
    let mut counts: BTreeMap<(String, String), Vec<Violation>> = BTreeMap::new();
    for v in kept {
        counts
            .entry((v.rule.to_string(), v.path.clone()))
            .or_default()
            .push(v);
    }
    for allow in &cfg.allows {
        let key = (allow.rule.clone(), allow.path.clone());
        let have = counts.get(&key).map_or(0, Vec::len);
        match have.cmp(&allow.count) {
            std::cmp::Ordering::Equal => {
                counts.remove(&key);
            }
            std::cmp::Ordering::Greater => {
                let vs = counts.remove(&key).unwrap_or_default();
                report.budget_errors.push(format!(
                    "{} in {}: {} violations exceed the reviewed budget of {} ({}); \
                     new sites:\n{}",
                    allow.rule,
                    allow.path,
                    have,
                    allow.count,
                    allow.reason,
                    vs.iter()
                        .map(|v| format!("    {}:{}: {}", v.path, v.line, v.msg))
                        .collect::<Vec<_>>()
                        .join("\n")
                ));
            }
            std::cmp::Ordering::Less => {
                counts.remove(&key);
                report.budget_errors.push(format!(
                    "{} in {}: {} violations but the budget says {} — \
                     ratchet the [[allow]] count down",
                    allow.rule, allow.path, have, allow.count
                ));
            }
        }
    }
    for vs in counts.into_values() {
        report.violations.extend(vs);
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

fn rule_static(name: &str) -> &'static str {
    RULE_NAMES
        .into_iter()
        .find(|r| *r == name)
        .expect("known rule")
}

fn applies(rc: &RuleConfig, rel: &str) -> bool {
    rc.include.iter().any(|p| rel.starts_with(p.as_str()))
        && !rc.exclude.iter().any(|p| rel.starts_with(p.as_str()))
}

/// `tests/`, `benches/`, `examples/`, `src/bin/` are boundary code where
/// panics are an acceptable failure mode.
fn is_boundary(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.contains("/bin/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
}

fn inline_allowed(lines: &[Line], line_1based: usize, rule: &str) -> bool {
    let needle = format!("mmpi-lint: allow({rule})");
    let idx = line_1based - 1;
    if lines.get(idx).is_some_and(|l| l.comment.contains(&needle)) {
        return true;
    }
    // Scan the contiguous comment block directly above the site.
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if !l.is_comment_only() {
            return false;
        }
        if l.comment.contains(&needle) {
            return true;
        }
    }
    false
}

// --------------------------------------------------------------------
// Rule: safety-comment
// --------------------------------------------------------------------

/// Every `unsafe` token must have a `SAFETY:` comment on the same line
/// or in the contiguous comment block directly above it (attributes and
/// doc comments may sit between). This is what turns each unsafe site
/// into a reviewable proof obligation.
fn safety_comment(rel: &str, lines: &[Line]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let unsafe_count = idents(&line.code)
            .iter()
            .filter(|(_, t)| *t == "unsafe")
            .count();
        if unsafe_count == 0 {
            continue;
        }
        if comment_mentions_safety(line) {
            continue;
        }
        // Scan the contiguous comment/attribute block directly above.
        let mut j = i;
        let mut found = false;
        while j > 0 {
            j -= 1;
            let l = &lines[j];
            if l.is_comment_only() {
                if mentions_safety(&l.comment) {
                    found = true;
                    break;
                }
            } else if l.is_attr_only() {
                if mentions_safety(&l.comment) {
                    found = true;
                    break;
                }
                continue;
            } else {
                break;
            }
        }
        if !found {
            out.push(Violation {
                rule: "safety-comment",
                path: rel.to_string(),
                line: i + 1,
                msg: "`unsafe` without an adjacent `SAFETY:` comment \
                      (state the invariant that makes this sound)"
                    .into(),
            });
        }
    }
    out
}

fn mentions_safety(comment: &str) -> bool {
    comment.to_ascii_lowercase().contains("safety")
}

fn comment_mentions_safety(line: &Line) -> bool {
    mentions_safety(&line.comment)
}

// --------------------------------------------------------------------
// Rule: token bans (wall-clock, ambient-rng, panic-path)
// --------------------------------------------------------------------

/// Generic banned-token rule. Token grammar in `lint.toml`:
/// * `.name`  — flags `recv.name(...)` method calls only,
/// * `name!`  — flags `name!(...)` macro invocations only,
/// * `name`   — flags any identifier occurrence.
fn token_ban(rule: &'static str, rc: &RuleConfig, rel: &str, lines: &[Line]) -> Vec<Violation> {
    let mut out = Vec::new();
    if rc.skip_tests && is_boundary(rel) {
        return out;
    }
    for (i, line) in lines.iter().enumerate() {
        if rc.skip_tests && line.in_test {
            continue;
        }
        for (col, tok) in idents(&line.code) {
            for banned in &rc.tokens {
                let hit = if let Some(m) = banned.strip_prefix('.') {
                    tok == m && char_before(&line.code, col) == Some('.')
                } else if let Some(m) = banned.strip_suffix('!') {
                    tok == m && char_after(&line.code, col + tok.len()) == Some('!')
                } else {
                    tok == banned
                };
                if hit {
                    out.push(Violation {
                        rule,
                        path: rel.to_string(),
                        line: i + 1,
                        msg: format!("forbidden token `{banned}`"),
                    });
                }
            }
        }
    }
    out
}

// --------------------------------------------------------------------
// Rule: hash-iter
// --------------------------------------------------------------------

/// Iteration methods whose order is the hasher's, not the program's.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Flag iteration over identifiers declared (in this file) with a
/// `HashMap`/`HashSet` type. Intra-file and heuristic by design: it
/// catches the realistic regression — someone adds a `for (k, v) in
/// &self.seen { send(...) }` to a wire/transport ordering path — while
/// staying dependency-free. Cross-file type flow is out of scope;
/// `docs/INVARIANTS.md` documents the limitation.
fn hash_iter(rel: &str, lines: &[Line]) -> Vec<Violation> {
    // Pass 1: names bound to hash-ordered types.
    let mut hashed: Vec<String> = Vec::new();
    for line in lines {
        let toks = idents(&line.code);
        for (k, (_, t)) in toks.iter().enumerate() {
            if *t != "HashMap" && *t != "HashSet" {
                continue;
            }
            // `name: HashMap<...>` (field, param, or annotated let) —
            // take the identifier before the `:`, but not a `::` path
            // segment like `collections::HashMap`.
            if k > 0 {
                let (pc, prev) = toks[k - 1];
                let rest = line.code[pc + prev.len()..].trim_start();
                if rest.starts_with(':') && !rest.starts_with("::") {
                    hashed.push(prev.to_string());
                    continue;
                }
            }
            // `let name = HashMap::new()` / `= HashMap::default()`.
            if let Some(pos) = toks.iter().position(|(_, t)| *t == "let") {
                if let Some((_, name)) = toks
                    .get(pos + 1)
                    .filter(|(_, t)| *t != "mut")
                    .or_else(|| toks.get(pos + 2))
                {
                    hashed.push((*name).to_string());
                }
            }
        }
    }
    hashed.sort();
    hashed.dedup();

    // Pass 2: iteration over those names. At most one violation per
    // line so `for v in self.seen.values()` counts once, not twice.
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let toks = idents(&line.code);
        let mut hit: Option<String> = None;
        for (k, (col, t)) in toks.iter().enumerate() {
            let is_iter_call = ITER_METHODS.contains(t)
                && char_before(&line.code, *col) == Some('.')
                && char_after(&line.code, col + t.len()) == Some('(');
            if is_iter_call && k > 0 && hashed.iter().any(|h| h == toks[k - 1].1) {
                hit = Some(format!(
                    "hash-order iteration `{}.{}()` in an ordering path — \
                     use a BTreeMap/BTreeSet or sort before iterating",
                    toks[k - 1].1,
                    t
                ));
                break;
            }
            // `for x in <expr>` where the iterated expression mentions a
            // hash-typed name (`&name`, `self.name`, `name.iter()`, …).
            if *t == "for" {
                if let Some(pos_in) = toks[k..].iter().position(|(_, t)| *t == "in") {
                    if let Some((_, name)) = toks[k + pos_in + 1..]
                        .iter()
                        .find(|(_, t)| hashed.iter().any(|h| h == t))
                    {
                        hit = Some(format!(
                            "hash-order `for` loop over `{name}` in an ordering path — \
                             use a BTreeMap/BTreeSet or sort before iterating"
                        ));
                        break;
                    }
                }
            }
        }
        if let Some(msg) = hit {
            out.push(Violation {
                rule: "hash-iter",
                path: rel.to_string(),
                line: i + 1,
                msg,
            });
        }
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    if dir.is_file() {
        if dir.extension().is_some_and(|e| e == "rs") {
            out.push(dir.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        if path.is_dir() {
            if name.as_deref() == Some("target") || name.as_deref() == Some(".git") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
