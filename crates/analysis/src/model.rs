//! Exhaustive interleaving model checker for the parallel frame
//! engine's shard-claim protocol (`crates/netsim/src/parallel.rs`).
//!
//! The engine's concurrency core is small but subtle: a coordinator
//! opens each frame by bumping a generation counter and broadcasting on
//! a condvar; workers spin-then-park on the generation, claim shards
//! through an atomic `fetch_add` cursor, and signal a `done` counter
//! the coordinator spins on before merging the frame. The `Racy<T>`
//! cells holding the shards are sound *only if* that protocol gives
//! every claimed shard to exactly one worker per phase and the
//! coordinator never merges while a worker is still inside the phase.
//! `parallel.rs` argues this in comments; this module proves it by
//! brute force.
//!
//! The protocol is modeled as a pure state machine (no threads, no
//! atomics) and every interleaving of coordinator + workers is
//! enumerated by breadth-first search with state memoization — a
//! hand-rolled mini-loom, since the build is offline. Each atomic or
//! mutex-protected step of the real code is one indivisible model
//! transition; everything between such steps is a distinct program
//! counter so the scheduler can preempt there.
//!
//! Checked properties, over *all* schedules:
//! * **exclusivity** — no shard is claimed twice within a phase;
//! * **barrier** — the coordinator merges only when every worker has
//!   left the phase and every shard ran exactly once;
//! * **liveness** — no reachable state is stuck (every parked worker
//!   is eventually released and the final frame completes).
//!
//! To show the checker actually has teeth, [`Bug`] injects the three
//! classic ways to get this protocol wrong — a torn (non-atomic)
//! cursor claim, a coordinator that skips the done-wait, and a worker
//! that parks without rechecking the generation under the mutex (the
//! lost-wakeup bug the real `worker_loop` defends against). Each
//! mutation must be caught; tests pin that.

use std::collections::{BTreeMap, VecDeque};

/// Protocol mutation to inject (or [`Bug::None`] for the real protocol).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bug {
    /// The faithful protocol — must verify.
    None,
    /// The shard claim reads and writes the cursor in two steps instead
    /// of one `fetch_add`: two workers can read the same value and both
    /// process that shard.
    NonAtomicClaim,
    /// The coordinator merges without waiting for `done == workers`:
    /// it can observe shards mid-mutation.
    SkipDoneWait,
    /// A worker decides to park on a stale generation check and only
    /// then parks, instead of rechecking under the mutex: a notify
    /// landing in between is lost and the worker sleeps forever.
    ParkWithoutRecheck,
}

/// Model size: `workers` claim `shards` per frame, `frames` times.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Number of worker threads (the coordinator is modeled separately).
    pub workers: usize,
    /// Frames to run; each frame is one generation bump + barrier.
    pub frames: u8,
    /// Shards claimed through the cursor each frame.
    pub shards: u8,
    /// Injected mutation.
    pub bug: Bug,
}

/// Outcome of an exhaustive check.
#[derive(Debug)]
pub enum Verdict {
    /// Every schedule satisfies every property.
    Pass {
        /// Distinct states visited.
        states: usize,
        /// Transitions explored.
        transitions: usize,
    },
    /// A schedule violates a property; `trace` replays it.
    Fail {
        /// What went wrong.
        kind: String,
        /// The step labels of a shortest offending schedule.
        trace: Vec<String>,
    },
}

impl Verdict {
    /// Did the check pass?
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Pass { .. })
    }

    /// Render a failure trace for assertion messages.
    pub fn render(&self) -> String {
        match self {
            Verdict::Pass {
                states,
                transitions,
            } => {
                format!("pass: {states} states, {transitions} transitions")
            }
            Verdict::Fail { kind, trace } => {
                let mut out = format!("FAIL: {kind}\nschedule:\n");
                for (i, step) in trace.iter().enumerate() {
                    out.push_str(&format!("  {:2}. {step}\n", i + 1));
                }
                out
            }
        }
    }
}

/// Worker program counter. Each variant boundary is a preemption point
/// in the real code.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Wpc {
    /// Spinning on the generation (or just woken).
    Idle,
    /// [`Bug::ParkWithoutRecheck`] only: committed to park on a stale
    /// generation read, not yet parked.
    PrePark,
    /// Parked on the condvar; wakes when `gen` moves past `at_gen`.
    Parked {
        /// Generation observed at park time (the wake predicate).
        at_gen: u8,
    },
    /// About to claim a shard from the cursor.
    Claim,
    /// [`Bug::NonAtomicClaim`] only: read the cursor, not yet written.
    ReadCursor {
        /// The stale cursor value read.
        val: u8,
    },
    /// Holding exclusive access to `shard`.
    Processing {
        /// The claimed shard index.
        shard: u8,
    },
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Worker {
    pc: Wpc,
    /// Last generation this worker acted on.
    seen_gen: u8,
}

/// Coordinator program counter.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Coord {
    /// Between frames.
    Idle,
    /// Spinning until `done == workers`, then merging.
    WaitDone,
    /// All frames merged; quiescent.
    Done,
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct State {
    coord: Coord,
    /// Frames fully merged so far.
    frame: u8,
    /// Phase generation (bump + notify are one mutex-protected step).
    gen: u8,
    /// Workers that signalled completion of the current phase.
    done: u8,
    /// Shard-claim cursor.
    cursor: u8,
    /// Per-shard claim count for the current phase.
    claims: Vec<u8>,
    workers: Vec<Worker>,
}

/// Runaway guard; the intended spaces are ~10^3..10^5 states.
const MAX_STATES: usize = 2_000_000;

/// Exhaustively enumerate all schedules of the protocol and check the
/// exclusivity, barrier, and liveness properties.
pub fn check(p: &Params) -> Verdict {
    assert!(
        (1..=4).contains(&p.workers) && p.frames >= 1 && p.shards >= 1,
        "model sized for exhaustive search"
    );
    let init = State {
        coord: Coord::Idle,
        frame: 0,
        gen: 0,
        done: 0,
        cursor: 0,
        claims: vec![0; p.shards as usize],
        workers: vec![
            Worker {
                pc: Wpc::Idle,
                seen_gen: 0,
            };
            p.workers
        ],
    };

    let mut ids: BTreeMap<State, usize> = BTreeMap::new();
    let mut states: Vec<State> = Vec::new();
    let mut pred: Vec<Option<(usize, String)>> = Vec::new();
    ids.insert(init.clone(), 0);
    states.push(init);
    pred.push(None);
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);

    let mut transitions = 0usize;
    let mut terminal = false;
    while let Some(id) = queue.pop_front() {
        let st = states[id].clone();
        let succ = successors(&st, p);
        if succ.is_empty() {
            if st.coord == Coord::Done {
                terminal = true;
                continue;
            }
            return Verdict::Fail {
                kind: format!(
                    "deadlock at frame {}: every worker is parked with no pending \
                     notify and the coordinator is waiting on done={}/{}",
                    st.frame, st.done, p.workers
                ),
                trace: trace_of(&pred, id, None),
            };
        }
        for (label, step) in succ {
            transitions += 1;
            match step {
                Err(kind) => {
                    return Verdict::Fail {
                        kind,
                        trace: trace_of(&pred, id, Some(label)),
                    };
                }
                Ok(s2) => {
                    if !ids.contains_key(&s2) {
                        let nid = states.len();
                        if nid >= MAX_STATES {
                            return Verdict::Fail {
                                kind: format!("state space exceeds {MAX_STATES} states"),
                                trace: Vec::new(),
                            };
                        }
                        ids.insert(s2.clone(), nid);
                        states.push(s2);
                        pred.push(Some((id, label)));
                        queue.push_back(nid);
                    }
                }
            }
        }
    }
    if !terminal {
        return Verdict::Fail {
            kind: "no quiescent terminal state is reachable".into(),
            trace: Vec::new(),
        };
    }
    Verdict::Pass {
        states: states.len(),
        transitions,
    }
}

/// All enabled transitions from `st`, as `(label, next-state or
/// property violation)`.
fn successors(st: &State, p: &Params) -> Vec<(String, Result<State, String>)> {
    let mut out = Vec::new();

    match st.coord {
        Coord::Idle => {
            if st.frame < p.frames {
                // advance_once: reset staging/cursor/done, then bump gen
                // and notify_all under the mutex — one indivisible step.
                let mut s = st.clone();
                s.gen += 1;
                s.done = 0;
                s.cursor = 0;
                s.claims = vec![0; p.shards as usize];
                s.coord = Coord::WaitDone;
                out.push((
                    format!(
                        "coordinator: opens frame {} (gen -> {}, notify_all)",
                        st.frame, s.gen
                    ),
                    Ok(s),
                ));
            } else {
                let mut s = st.clone();
                s.coord = Coord::Done;
                out.push((
                    "coordinator: all frames merged, engine quiescent".into(),
                    Ok(s),
                ));
            }
        }
        Coord::WaitDone => {
            let gate_open = st.done as usize == p.workers || p.bug == Bug::SkipDoneWait;
            if gate_open {
                let label = format!(
                    "coordinator: merges frame {} (done = {}/{})",
                    st.frame, st.done, p.workers
                );
                let mid = st.workers.iter().position(|w| {
                    matches!(
                        w.pc,
                        Wpc::Claim | Wpc::ReadCursor { .. } | Wpc::Processing { .. }
                    )
                });
                if let Some(i) = mid {
                    out.push((
                        label,
                        Err(format!(
                            "barrier violation: coordinator merges frame {} while \
                             worker {} is still inside the phase",
                            st.frame, i
                        )),
                    ));
                } else if let Some(shard) = st.claims.iter().position(|&c| c != 1) {
                    out.push((
                        label,
                        Err(format!(
                            "barrier violation: coordinator merges frame {} but \
                             shard {} ran {} times",
                            st.frame, shard, st.claims[shard]
                        )),
                    ));
                } else {
                    let mut s = st.clone();
                    s.frame += 1;
                    s.coord = Coord::Idle;
                    out.push((label, Ok(s)));
                }
            }
        }
        Coord::Done => {}
    }

    for i in 0..p.workers {
        match st.workers[i].pc {
            Wpc::Idle => {
                if st.workers[i].seen_gen != st.gen {
                    let mut s = st.clone();
                    s.workers[i].seen_gen = st.gen;
                    s.workers[i].pc = Wpc::Claim;
                    out.push((
                        format!("worker {i}: sees gen {}, enters the phase", st.gen),
                        Ok(s),
                    ));
                } else if p.bug == Bug::ParkWithoutRecheck {
                    let mut s = st.clone();
                    s.workers[i].pc = Wpc::PrePark;
                    out.push((
                        format!("worker {i}: spin budget exhausted, decides to park on a stale gen read"),
                        Ok(s),
                    ));
                } else {
                    // worker_loop: lock, recheck gen, park — the recheck
                    // and the park are atomic w.r.t. the gen bump, so
                    // the park's wake predicate is exactly "gen moved".
                    let mut s = st.clone();
                    s.workers[i].pc = Wpc::Parked { at_gen: st.gen };
                    out.push((
                        format!("worker {i}: rechecks gen under the mutex, parks"),
                        Ok(s),
                    ));
                }
            }
            Wpc::PrePark => {
                // The buggy park captures whatever generation is current
                // *now*: a notify that landed since the stale check is
                // lost forever.
                let mut s = st.clone();
                s.workers[i].pc = Wpc::Parked { at_gen: st.gen };
                out.push((
                    format!("worker {i}: parks on the condvar (any notify in between is lost)"),
                    Ok(s),
                ));
            }
            Wpc::Parked { at_gen } => {
                if at_gen != st.gen {
                    let mut s = st.clone();
                    s.workers[i].pc = Wpc::Idle;
                    out.push((format!("worker {i}: woken by notify_all"), Ok(s)));
                }
            }
            Wpc::Claim => {
                if p.bug == Bug::NonAtomicClaim {
                    let mut s = st.clone();
                    s.workers[i].pc = Wpc::ReadCursor { val: st.cursor };
                    out.push((format!("worker {i}: reads cursor = {}", st.cursor), Ok(s)));
                } else {
                    out.push(claim(st, p, i, st.cursor, true));
                }
            }
            Wpc::ReadCursor { val } => {
                out.push(claim(st, p, i, val, false));
            }
            Wpc::Processing { shard } => {
                let mut s = st.clone();
                s.workers[i].pc = Wpc::Claim;
                out.push((format!("worker {i}: finishes shard {shard}"), Ok(s)));
            }
        }
    }
    out
}

/// The cursor claim: atomically (`fetch_add`) or as the write half of a
/// torn read-modify-write when `atomic` is false.
fn claim(
    st: &State,
    p: &Params,
    i: usize,
    val: u8,
    atomic: bool,
) -> (String, Result<State, String>) {
    let mut s = st.clone();
    if val < p.shards {
        // Cursor values past `shards` all behave identically; clamping
        // keeps the state space finite without changing semantics.
        s.cursor = (val + 1).min(p.shards);
        s.claims[val as usize] += 1;
        s.workers[i].pc = Wpc::Processing { shard: val };
        let label = if atomic {
            format!("worker {i}: fetch_add claims shard {val}")
        } else {
            format!(
                "worker {i}: writes cursor = {} and takes shard {val}",
                val + 1
            )
        };
        if s.claims[val as usize] > 1 {
            return (
                label,
                Err(format!(
                    "exclusivity violation: shard {val} claimed twice in one phase"
                )),
            );
        }
        (label, Ok(s))
    } else {
        s.workers[i].pc = Wpc::Idle;
        s.done += 1;
        (
            format!(
                "worker {i}: cursor past the end, signals done ({}/{})",
                s.done, p.workers
            ),
            Ok(s),
        )
    }
}

/// Reconstruct the shortest schedule reaching state `id` (BFS order),
/// optionally appending the violating step's label.
fn trace_of(pred: &[Option<(usize, String)>], mut id: usize, last: Option<String>) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(l) = last {
        out.push(l);
    }
    while let Some((parent, label)) = &pred[id] {
        out.push(label.clone());
        id = *parent;
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(workers: usize, frames: u8, shards: u8, bug: Bug) -> Params {
        Params {
            workers,
            frames,
            shards,
            bug,
        }
    }

    #[test]
    fn faithful_protocol_verifies_2x2() {
        let v = check(&params(2, 2, 2, Bug::None));
        assert!(v.is_pass(), "{}", v.render());
    }

    #[test]
    fn faithful_protocol_verifies_3_workers() {
        let v = check(&params(3, 2, 3, Bug::None));
        assert!(v.is_pass(), "{}", v.render());
    }

    #[test]
    fn torn_claim_is_caught() {
        match check(&params(2, 2, 2, Bug::NonAtomicClaim)) {
            Verdict::Fail { kind, trace } => {
                assert!(kind.contains("claimed twice"), "{kind}");
                assert!(!trace.is_empty());
            }
            v => panic!("expected exclusivity failure, got {}", v.render()),
        }
    }

    #[test]
    fn skipped_done_wait_is_caught() {
        match check(&params(2, 2, 2, Bug::SkipDoneWait)) {
            Verdict::Fail { kind, .. } => {
                assert!(kind.contains("barrier violation"), "{kind}")
            }
            v => panic!("expected barrier failure, got {}", v.render()),
        }
    }

    #[test]
    fn lost_wakeup_park_is_caught() {
        match check(&params(2, 2, 2, Bug::ParkWithoutRecheck)) {
            Verdict::Fail { kind, .. } => assert!(kind.contains("deadlock"), "{kind}"),
            v => panic!("expected deadlock, got {}", v.render()),
        }
    }
}
