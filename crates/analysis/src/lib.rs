//! Workspace-native correctness tooling for the mcast-mpi repo.
//!
//! Two halves:
//!
//! * **`mmpi-lint`** ([`rules`], [`lexer`], [`config`]) — a
//!   repo-specific static analyzer enforcing the invariants in
//!   `docs/INVARIANTS.md`: SAFETY comments on every `unsafe`, no wall
//!   clock / hash-order iteration / ambient randomness / panics in
//!   replay-critical paths. Driven by the checked-in `lint.toml`
//!   allowlist; run as `cargo run -p mmpi-analysis --bin mmpi-lint`.
//! * **the shard-claim model checker** ([`model`]) — exhaustively
//!   enumerates every interleaving of the parallel frame engine's
//!   coordinator/worker protocol and proves the `Racy` exclusivity,
//!   barrier, and liveness properties that `netsim/src/parallel.rs`
//!   otherwise only argues in comments.
//!
//! Everything here is std-only so the tooling never constrains the
//! toolchain (it must run under miri and whatever CI carries).

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod model;
pub mod rules;
