//! The `mmpi-lint` command: lint the workspace against `lint.toml`.
//!
//! Usage: `mmpi-lint [--root <dir>]` — `<dir>` defaults to the current
//! directory and must contain `lint.toml`. Exits non-zero on any
//! violation or stale allowlist budget, printing one line per finding.

use std::path::PathBuf;
use std::process::ExitCode;

use mmpi_analysis::{config::Config, rules};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("mmpi-lint: --root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: mmpi-lint [--root <workspace dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mmpi-lint: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let cfg_path = root.join("lint.toml");
    let src = match std::fs::read_to_string(&cfg_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mmpi-lint: cannot read {}: {e}", cfg_path.display());
            return ExitCode::FAILURE;
        }
    };
    let cfg = match Config::parse(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("mmpi-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match rules::run(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mmpi-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report.is_clean() {
        println!(
            "mmpi-lint: {} files scanned, clean ({} reviewed exceptions)",
            report.files_scanned,
            cfg.allows.len()
        );
        ExitCode::SUCCESS
    } else {
        eprint!("{}", report.render());
        eprintln!(
            "mmpi-lint: {} violation(s), {} budget error(s) across {} files",
            report.violations.len(),
            report.budget_errors.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
