//! Strongly-typed identifiers used across the simulator.
//!
//! Everything is a small integer index under the hood, but mixing up a host
//! id with a port id is exactly the kind of bug a frame-level simulator
//! produces, so each concept gets its own newtype.

use std::fmt;

/// Identifies a simulated host (one per MPI rank). Also serves as the
/// host's MAC/IP identity on the simulated network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub u32);

/// Identifies an IP multicast group (a class-D address in the real world).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

/// A UDP port number on a simulated host.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UdpPort(pub u16);

/// Index of a socket within one host's socket table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SocketId(pub u32);

/// A physical port on the switch (one per attached host in a star topology).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SwitchPort(pub u32);

impl HostId {
    /// The index as a usize, for indexing host tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SocketId {
    /// The index as a usize, for indexing socket tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SwitchPort {
    /// The index as a usize, for indexing port tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as the class-D address the group would occupy.
        write!(f, "239.0.{}.{}", (self.0 >> 8) & 0xff, self.0 & 0xff)
    }
}

impl fmt::Display for UdpPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

/// Destination of a UDP datagram: a specific host or a multicast group.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DatagramDst {
    /// Point-to-point delivery to one host.
    Unicast(HostId),
    /// Delivery to every member of a multicast group.
    Multicast(GroupId),
}

impl fmt::Display for DatagramDst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatagramDst::Unicast(h) => write!(f, "{h}"),
            DatagramDst::Multicast(g) => write!(f, "{g}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(HostId(3).to_string(), "host3");
        assert_eq!(GroupId(0x0102).to_string(), "239.0.1.2");
        assert_eq!(UdpPort(5000).to_string(), ":5000");
        assert_eq!(DatagramDst::Unicast(HostId(1)).to_string(), "host1");
        assert_eq!(DatagramDst::Multicast(GroupId(5)).to_string(), "239.0.0.5");
    }

    #[test]
    fn indices() {
        assert_eq!(HostId(7).index(), 7);
        assert_eq!(SocketId(2).index(), 2);
        assert_eq!(SwitchPort(4).index(), 4);
    }
}
