//! Scriptable topology faults: holds, releases, partitions, heals.
//!
//! A [`TopologyScript`] is a schedule of [`TopologyOp`]s at virtual
//! times, in the style of turmoil's `hold`/`release`/`partition`
//! surface. It replaces the old one-shot `Partition` window in
//! [`crate::params::FaultParams`]: where the window could only drop
//! frames crossing one cut for one interval, a script can stack any
//! interleaving of directional holds and group partitions mid-run.
//!
//! Semantics (the contract `crates/netsim/tests/topology_script.rs`
//! locks down, and `docs/SIMULATOR.md` documents):
//!
//! * **Hold parks, partition drops.** A frame arriving on a held link
//!   is parked at the receiving link and re-delivered, in arrival
//!   order, at the moment the hold is released — turmoil leaves
//!   hold-vs-drop as a TODO; we resolve it as *release-with-delay*,
//!   never silent loss. A frame crossing a partition cut is dropped
//!   (the old `Partition` behaviour).
//! * **Directional holds.** `hold(a, b)` parks frames from `a`
//!   arriving at `b`'s link only; `b → a` traffic is unaffected.
//! * **`heal()` is total**: it clears the partition *and* releases
//!   every outstanding hold.
//! * Ops at the same instant apply in insertion order.
//!
//! The runtime side is [`TopoCursor`]: a monotone cursor the engines
//! advance with event time. The world schedules a wake event at every
//! op time, so releases happen even on otherwise idle links.

use crate::ids::HostId;
use crate::time::{SimDuration, SimTime};

/// One topology operation (see the module docs for semantics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyOp {
    /// Park frames from the first host arriving at the second host's
    /// link (directional).
    Hold(HostId, HostId),
    /// Undo a [`TopologyOp::Hold`]; parked frames are re-delivered at
    /// the release time in arrival order.
    Release(HostId, HostId),
    /// Split the cluster into isolated groups; hosts in no listed
    /// group form one implicit remainder group. Frames crossing any
    /// cut are dropped. Replaces any partition currently in force.
    Partition(Vec<Vec<HostId>>),
    /// Remove the partition and release every outstanding hold.
    Heal,
    /// Permanently crash a host: from the op time on, every frame
    /// arriving at it is dropped (counted as `crashed_frames`) — frames
    /// already in flight included — and the host process is descheduled.
    /// Unlike [`TopologyOp::Partition`] this is never healed; it is the
    /// fault injector for the membership layer's failure detector.
    Crash(HostId),
}

/// A schedule of topology operations at virtual times.
///
/// Built with the fluent methods and handed to the simulator via
/// [`crate::params::FaultParams::topology`]. Ops may be added in any
/// order; the cursor applies them sorted by time (ties in insertion
/// order).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TopologyScript {
    ops: Vec<(SimTime, TopologyOp)>,
}

impl TopologyScript {
    /// The empty script (no topology faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule an operation at `at`.
    pub fn op(mut self, at: SimTime, op: TopologyOp) -> Self {
        self.ops.push((at, op));
        self
    }

    /// At `at`, start parking frames from `a` arriving at `b`.
    pub fn hold(self, at: SimTime, a: HostId, b: HostId) -> Self {
        self.op(at, TopologyOp::Hold(a, b))
    }

    /// At `at`, release the `a → b` hold (parked frames re-deliver).
    pub fn release(self, at: SimTime, a: HostId, b: HostId) -> Self {
        self.op(at, TopologyOp::Release(a, b))
    }

    /// At `at`, partition the cluster into `groups`.
    pub fn partition(self, at: SimTime, groups: Vec<Vec<HostId>>) -> Self {
        self.op(at, TopologyOp::Partition(groups))
    }

    /// At `at`, clear the partition and release every hold.
    pub fn heal(self, at: SimTime) -> Self {
        self.op(at, TopologyOp::Heal)
    }

    /// At `at`, permanently crash `host` (see [`TopologyOp::Crash`]).
    pub fn crash(self, at: SimTime, host: HostId) -> Self {
        self.op(at, TopologyOp::Crash(host))
    }

    /// The old one-shot `Partition` window: isolate `island` from the
    /// rest during `[start, start + duration)`, then heal.
    pub fn partition_window(start: SimTime, duration: SimDuration, island: Vec<HostId>) -> Self {
        Self::new()
            .partition(start, vec![island])
            .heal(start + duration)
    }

    /// True when the script holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The scheduled operations in insertion order.
    pub fn ops(&self) -> &[(SimTime, TopologyOp)] {
        &self.ops
    }

    /// The distinct times at which operations fire, ascending — the
    /// instants the engines schedule wake events for.
    pub fn op_times(&self) -> Vec<SimTime> {
        let mut times: Vec<SimTime> = self.ops.iter().map(|(at, _)| *at).collect();
        times.sort_unstable();
        times.dedup();
        times
    }
}

/// Runtime cursor over a [`TopologyScript`]: tracks which ops have
/// applied as event time advances monotonically.
#[derive(Clone, Debug)]
pub struct TopoCursor {
    /// Ops sorted by time, ties in insertion order.
    ops: Vec<(SimTime, TopologyOp)>,
    /// Index of the next unapplied op.
    next: usize,
    /// Holds currently in force (small; linear scans are fine).
    holds: Vec<(HostId, HostId)>,
    /// The partition currently in force, if any.
    partition: Option<Vec<Vec<HostId>>>,
    /// Hosts crashed so far (permanent; small, linear scans are fine).
    crashed: Vec<HostId>,
}

impl TopoCursor {
    /// Cursor at time zero over `script`.
    pub fn new(script: &TopologyScript) -> Self {
        let mut ops = script.ops.clone();
        ops.sort_by_key(|(at, _)| *at); // stable: ties keep insertion order
        TopoCursor {
            ops,
            next: 0,
            holds: Vec::new(),
            partition: None,
            crashed: Vec::new(),
        }
    }

    /// Apply every op with time `<= now`; returns the `(src, dst)`
    /// pairs whose holds were released (each at most once, in apply
    /// order) so the engine can re-deliver parked frames.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<(HostId, HostId)> {
        let mut released = Vec::new();
        while self.next < self.ops.len() && self.ops[self.next].0 <= now {
            let op = self.ops[self.next].1.clone();
            self.next += 1;
            match op {
                TopologyOp::Hold(a, b) => {
                    if !self.holds.contains(&(a, b)) {
                        self.holds.push((a, b));
                    }
                }
                TopologyOp::Release(a, b) => {
                    if let Some(i) = self.holds.iter().position(|&p| p == (a, b)) {
                        self.holds.remove(i);
                        released.push((a, b));
                    }
                }
                TopologyOp::Partition(groups) => self.partition = Some(groups),
                TopologyOp::Heal => {
                    self.partition = None;
                    released.append(&mut self.holds);
                }
                TopologyOp::Crash(h) => {
                    if !self.crashed.contains(&h) {
                        self.crashed.push(h);
                    }
                }
            }
        }
        released
    }

    /// True while frames from `src` arriving at `dst` are parked.
    #[inline]
    pub fn is_held(&self, src: HostId, dst: HostId) -> bool {
        self.holds.contains(&(src, dst))
    }

    /// True once `host` has crashed (permanent).
    #[inline]
    pub fn is_crashed(&self, host: HostId) -> bool {
        self.crashed.contains(&host)
    }

    /// The hosts crashed so far, in crash order.
    pub fn crashed(&self) -> &[HostId] {
        &self.crashed
    }

    /// True when a `src → dst` frame crosses the partition cut.
    #[inline]
    pub fn separated(&self, src: HostId, dst: HostId) -> bool {
        let Some(groups) = &self.partition else {
            return false;
        };
        let group_of = |h: HostId| {
            groups
                .iter()
                .position(|g| g.contains(&h))
                .unwrap_or(usize::MAX) // implicit remainder group
        };
        group_of(src) != group_of(dst)
    }

    /// True when every op has applied and no hold is outstanding —
    /// frames can no longer be parked or released by this script.
    pub fn is_done(&self) -> bool {
        self.next >= self.ops.len() && self.holds.is_empty()
    }

    /// True when the cursor currently affects no traffic at all (no
    /// hold, no partition, no crash) and never will again. A crash is
    /// permanent, so a cursor that has crashed a host is never inert.
    pub fn is_inert_now(&self) -> bool {
        self.is_done() && self.partition.is_none() && self.crashed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_window_matches_old_semantics() {
        let script = TopologyScript::partition_window(
            SimTime::from_micros(10),
            SimDuration::from_micros(5),
            vec![HostId(0), HostId(1)],
        );
        let mut c = TopoCursor::new(&script);
        c.advance_to(SimTime::from_micros(9));
        assert!(!c.separated(HostId(0), HostId(2)));
        c.advance_to(SimTime::from_micros(10));
        assert!(c.separated(HostId(0), HostId(2)));
        assert!(!c.separated(HostId(0), HostId(1)));
        assert!(!c.separated(HostId(2), HostId(3)));
        c.advance_to(SimTime::from_micros(14));
        assert!(c.separated(HostId(0), HostId(2)));
        // The window is half-open: healed exactly at start + duration.
        c.advance_to(SimTime::from_micros(15));
        assert!(!c.separated(HostId(0), HostId(2)));
        assert!(c.is_inert_now());
    }

    #[test]
    fn hold_is_directional_and_release_reports_once() {
        let script = TopologyScript::new()
            .hold(SimTime::from_micros(1), HostId(0), HostId(1))
            .release(SimTime::from_micros(5), HostId(0), HostId(1))
            // Releasing a pair that is not held is a no-op.
            .release(SimTime::from_micros(6), HostId(0), HostId(1));
        let mut c = TopoCursor::new(&script);
        assert!(c.advance_to(SimTime::from_micros(2)).is_empty());
        assert!(c.is_held(HostId(0), HostId(1)));
        assert!(!c.is_held(HostId(1), HostId(0)));
        assert_eq!(
            c.advance_to(SimTime::from_micros(10)),
            vec![(HostId(0), HostId(1))]
        );
        assert!(c.is_done());
    }

    #[test]
    fn heal_releases_every_hold_and_clears_partition() {
        let script = TopologyScript::new()
            .hold(SimTime::from_micros(1), HostId(0), HostId(2))
            .hold(SimTime::from_micros(2), HostId(1), HostId(2))
            .partition(SimTime::from_micros(3), vec![vec![HostId(3)]])
            .heal(SimTime::from_micros(9));
        let mut c = TopoCursor::new(&script);
        c.advance_to(SimTime::from_micros(4));
        assert!(c.separated(HostId(3), HostId(0)));
        let released = c.advance_to(SimTime::from_micros(9));
        assert_eq!(
            released,
            vec![(HostId(0), HostId(2)), (HostId(1), HostId(2))]
        );
        assert!(!c.separated(HostId(3), HostId(0)));
        assert!(c.is_inert_now());
    }

    #[test]
    fn same_instant_ops_apply_in_insertion_order() {
        let at = SimTime::from_micros(7);
        let script = TopologyScript::new()
            .hold(at, HostId(0), HostId(1))
            .release(at, HostId(0), HostId(1));
        let mut c = TopoCursor::new(&script);
        assert_eq!(c.advance_to(at), vec![(HostId(0), HostId(1))]);
        assert!(!c.is_held(HostId(0), HostId(1)));
    }

    #[test]
    fn crash_is_permanent_and_never_inert() {
        let script = TopologyScript::new()
            .crash(SimTime::from_micros(5), HostId(2))
            .heal(SimTime::from_micros(9));
        let mut c = TopoCursor::new(&script);
        c.advance_to(SimTime::from_micros(4));
        assert!(!c.is_crashed(HostId(2)));
        c.advance_to(SimTime::from_micros(5));
        assert!(c.is_crashed(HostId(2)));
        assert!(!c.is_crashed(HostId(0)));
        // Heal clears partitions and holds, never a crash.
        c.advance_to(SimTime::from_micros(20));
        assert!(c.is_crashed(HostId(2)));
        assert!(c.is_done());
        assert!(!c.is_inert_now(), "a crashed host keeps the cursor live");
        assert_eq!(c.crashed(), &[HostId(2)]);
    }

    #[test]
    fn op_times_are_deduped_and_sorted() {
        let script = TopologyScript::new()
            .heal(SimTime::from_micros(9))
            .hold(SimTime::from_micros(1), HostId(0), HostId(1))
            .release(SimTime::from_micros(1), HostId(0), HostId(1));
        assert_eq!(
            script.op_times(),
            vec![SimTime::from_micros(1), SimTime::from_micros(9)]
        );
    }
}
