//! # mmpi-netsim — a frame-level Fast Ethernet / IP / UDP simulator
//!
//! The testbed substrate for the `mcast-mpi` reproduction of *"MPI
//! Collective Operations over IP Multicast"* (Apon, Chen, Carrasco, IPPS
//! 2000). The paper measured nine Pentium-III workstations on a shared
//! 100 Mbps Ethernet **hub** and on a managed **switch**; this crate
//! simulates exactly those two fabrics at the granularity their results
//! depend on:
//!
//! * Ethernet framing: preamble, MAC header, 46-byte minimum payload
//!   padding, FCS, inter-frame gap, 1500-byte MTU, 80 ns/byte
//!   serialization;
//! * the hub as one CSMA/CD collision domain with truncated binary
//!   exponential backoff;
//! * the switch as store-and-forward with per-output-port queues and
//!   IGMP-snooped multicast membership;
//! * hosts with UDP sockets, IPv4 fragmentation/reassembly, bounded
//!   receive buffers, LogP-style software send/receive overheads, and the
//!   paper's optional strict "receive must be posted" loss model.
//!
//! ## Co-simulation
//!
//! [`cluster::run_cluster`] executes an SPMD closure — one OS thread per
//! rank — against the simulated network in deterministic virtual time.
//! The same protocol code that runs here also runs over real UDP multicast
//! sockets via the `mmpi-transport` crate.
//!
//! ## Execution engines
//!
//! The world runs on one of two engines behind the [`world::World`]
//! facade (selected by [`world::RunMode`]): the sequential event-loop
//! engine, and a frame-based [`parallel`] engine that shards hosts
//! across a worker pool and stays byte-deterministic at any worker
//! count. Scheduled link faults — holds, partitions, heals — are
//! described by a [`topology::TopologyScript`]. The frame model,
//! merge ordering, and determinism contract are documented in
//! `docs/SIMULATOR.md`.
//!
//! ```
//! use mmpi_netsim::cluster::{run_cluster, ClusterConfig};
//! use mmpi_netsim::ids::{DatagramDst, GroupId};
//! use mmpi_netsim::params::NetParams;
//!
//! // Rank 0 multicasts 1 kB to everyone else.
//! let cfg = ClusterConfig::new(4, NetParams::fast_ethernet_switch(), 42);
//! let report = run_cluster(&cfg, |mut p| {
//!     let sock = p.bind(5000);
//!     let group = GroupId(1);
//!     p.join_group(sock, group);
//!     if p.rank() == 0 {
//!         p.send(sock, DatagramDst::Multicast(group), 5000, vec![7u8; 1024]);
//!         Vec::new()
//!     } else {
//!         p.recv(sock).payload.to_vec()
//!     }
//! })
//! .unwrap();
//! assert!(report.outputs[1..].iter().all(|b| b == &vec![7u8; 1024]));
//! ```

#![warn(missing_docs)]
// The only unsafe in the workspace's own crates lives in the parallel
// engine's `Racy` shard protocol (parallel.rs); every site must argue
// its claim explicitly (mmpi-lint enforces the comments, and
// crates/analysis/src/model.rs model-checks the protocol itself).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cluster;
pub mod error;
pub mod event;
pub mod frame;
pub mod host;
pub mod hub;
pub mod ids;
pub mod nic;
pub mod parallel;
pub mod params;
pub mod process;
pub mod rng;
pub mod stats;
pub mod switch;
pub mod time;
pub mod topology;
pub mod trace;
pub mod world;

pub use cluster::{run_cluster, ClusterConfig, RunReport};
pub use error::SimError;
pub use frame::{Datagram, SharedPayload};
pub use ids::{DatagramDst, GroupId, HostId, SocketId, UdpPort};
pub use params::{EthernetParams, FabricKind, HostParams, IpParams, NetParams, SwitchParams};
pub use process::SimProcess;
pub use time::{SimDuration, SimTime};
pub use topology::{TopologyOp, TopologyScript};
pub use world::{Completion, RunMode, StepOutcome, World};
