//! Datagrams and Ethernet frames as the simulator models them.
//!
//! A [`Datagram`] is one UDP send: source/destination addressing plus the
//! actual payload bytes the protocol code above produced. Large datagrams
//! are IP-fragmented into several [`Frame`]s; each frame carries a shared
//! reference to its datagram (an `Arc`, so fragmentation never copies
//! payload bytes) plus its fragment index. A host reassembles a datagram
//! when all of its fragments have arrived.
//!
//! Payload bytes are carried as a [`SharedPayload`] — a short sequence of
//! reference-counted [`Bytes`] segments (typically a wire-header view
//! plus a payload view) — so a datagram entering the simulator is never
//! flattened or copied, no matter how often its frames are cloned for
//! multicast fan-out, duplication, or reordering redelivery.

use std::sync::Arc;

use bytes::Bytes;

use crate::ids::{DatagramDst, GroupId, HostId, UdpPort};

/// The bytes of one UDP datagram, as zero-copy shared segments.
///
/// The simulator only ever needs lengths (for timing and buffer
/// accounting); protocol code above reconstructs its wire view from the
/// segments without a copy. `clone` is a few reference-count bumps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SharedPayload {
    segments: Vec<Bytes>,
    len: usize,
}

impl SharedPayload {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from shared segments, kept verbatim (including empty ones —
    /// protocol code may rely on the segment arity, e.g. a wire header
    /// view followed by an empty payload view).
    pub fn from_segments(segments: Vec<Bytes>) -> Self {
        let len = segments.iter().map(Bytes::len).sum();
        SharedPayload { segments, len }
    }

    /// Total payload length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bytes are carried.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying shared segments.
    pub fn segments(&self) -> &[Bytes] {
        &self.segments
    }

    /// Flatten into one freshly allocated `Vec` (tests and tracing; the
    /// data path never calls this).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.len);
        for s in &self.segments {
            v.extend_from_slice(s);
        }
        v
    }
}

impl std::ops::Index<usize> for SharedPayload {
    type Output = u8;
    fn index(&self, index: usize) -> &u8 {
        let mut i = index;
        for s in &self.segments {
            if i < s.len() {
                return &s[i];
            }
            i -= s.len();
        }
        panic!("index {index} out of bounds of {}-byte payload", self.len);
    }
}

impl From<Vec<u8>> for SharedPayload {
    fn from(v: Vec<u8>) -> Self {
        SharedPayload::from_segments(vec![Bytes::from(v)])
    }
}

impl From<Bytes> for SharedPayload {
    fn from(b: Bytes) -> Self {
        SharedPayload::from_segments(vec![b])
    }
}

/// One UDP datagram in flight.
#[derive(Debug)]
pub struct Datagram {
    /// Globally unique id, assigned at send time (used for reassembly).
    pub id: u64,
    /// Sending host.
    pub src_host: HostId,
    /// Sending UDP port.
    pub src_port: UdpPort,
    /// Destination host or multicast group.
    pub dst: DatagramDst,
    /// Destination UDP port.
    pub dst_port: UdpPort,
    /// The payload handed to the simulated socket layer (shared, never
    /// copied inside the simulator).
    pub payload: SharedPayload,
    /// True for kernel-generated traffic (e.g. modelled TCP acks): charged
    /// a smaller host overhead and excluded from data-frame statistics.
    pub kernel: bool,
}

impl Datagram {
    /// Payload length in bytes.
    #[inline]
    pub fn len(&self) -> u32 {
        self.payload.len() as u32
    }

    /// True when the payload is empty (e.g. a pure-synchronization scout).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// What a frame carries.
#[derive(Clone, Debug)]
pub enum FramePayload {
    /// Fragment `index` of `count` of a UDP datagram.
    Fragment {
        /// The datagram this fragment belongs to (shared, zero-copy).
        datagram: Arc<Datagram>,
        /// Fragment index in `0..count`.
        index: u32,
        /// Total fragments of the datagram.
        count: u32,
    },
    /// An IGMP membership report (join) — lets the switch snoop groups.
    IgmpJoin {
        /// Group being joined.
        group: GroupId,
    },
    /// An IGMP leave message.
    IgmpLeave {
        /// Group being left.
        group: GroupId,
    },
}

/// Layer-2 destination of a frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameDst {
    /// A single station's MAC address.
    Unicast(HostId),
    /// A multicast MAC address derived from the group.
    Multicast(GroupId),
    /// The broadcast address (used for IGMP messages).
    Broadcast,
}

/// One Ethernet frame on the simulated wire.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Unique id (for tracing).
    pub id: u64,
    /// Transmitting station.
    pub src: HostId,
    /// Layer-2 destination.
    pub dst: FrameDst,
    /// MAC payload length in bytes (IP header + fragment data, before any
    /// padding to the Ethernet minimum).
    pub mac_payload: u32,
    /// Contents.
    pub payload: FramePayload,
}

impl Frame {
    /// True if `host` (with the given multicast memberships) should accept
    /// this frame, i.e. the NIC's address filter passes it.
    pub fn accepted_by(&self, host: HostId, is_member: impl Fn(GroupId) -> bool) -> bool {
        match self.dst {
            FrameDst::Unicast(h) => h == host,
            FrameDst::Multicast(g) => is_member(g),
            FrameDst::Broadcast => true,
        }
    }
}

/// Split a datagram into its frames under the given MTU, using the IP
/// fragmentation rules from [`crate::params::IpParams`].
pub fn fragment_datagram(
    datagram: Arc<Datagram>,
    ip: &crate::params::IpParams,
    mtu: u32,
    mut next_frame_id: impl FnMut() -> u64,
) -> Vec<Frame> {
    let len = datagram.len();
    let count = ip.fragments_for(len, mtu);
    let dst = match datagram.dst {
        DatagramDst::Unicast(h) => FrameDst::Unicast(h),
        DatagramDst::Multicast(g) => FrameDst::Multicast(g),
    };
    (0..count)
        .map(|index| Frame {
            id: next_frame_id(),
            src: datagram.src_host,
            dst,
            mac_payload: ip.fragment_mac_payload(len, mtu, index),
            payload: FramePayload::Fragment {
                datagram: Arc::clone(&datagram),
                index,
                count,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::IpParams;

    fn dg(len: usize, dst: DatagramDst) -> Arc<Datagram> {
        Arc::new(Datagram {
            id: 1,
            src_host: HostId(0),
            src_port: UdpPort(1000),
            dst,
            dst_port: UdpPort(2000),
            payload: vec![0xAB; len].into(),
            kernel: false,
        })
    }

    #[test]
    fn small_datagram_is_one_frame() {
        let mut id = 0u64;
        let frames = fragment_datagram(
            dg(100, DatagramDst::Unicast(HostId(1))),
            &IpParams::default(),
            1500,
            || {
                id += 1;
                id
            },
        );
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].mac_payload, 20 + 8 + 100);
        assert!(matches!(frames[0].dst, FrameDst::Unicast(HostId(1))));
    }

    #[test]
    fn large_datagram_fragments_and_shares_payload() {
        let mut id = 0u64;
        let d = dg(5000, DatagramDst::Multicast(GroupId(3)));
        let frames = fragment_datagram(d.clone(), &IpParams::default(), 1500, || {
            id += 1;
            id
        });
        assert_eq!(frames.len(), 4); // paper: 5000/1500 + 1
        for (i, f) in frames.iter().enumerate() {
            assert!(matches!(f.dst, FrameDst::Multicast(GroupId(3))));
            match &f.payload {
                FramePayload::Fragment {
                    datagram,
                    index,
                    count,
                } => {
                    assert!(Arc::ptr_eq(datagram, &d));
                    assert_eq!(*index, i as u32);
                    assert_eq!(*count, 4);
                }
                other => panic!("unexpected payload {other:?}"),
            }
        }
    }

    #[test]
    fn nic_filter_semantics() {
        let f = Frame {
            id: 0,
            src: HostId(0),
            dst: FrameDst::Multicast(GroupId(7)),
            mac_payload: 46,
            payload: FramePayload::IgmpJoin { group: GroupId(7) },
        };
        assert!(f.accepted_by(HostId(5), |g| g == GroupId(7)));
        assert!(!f.accepted_by(HostId(5), |_| false));

        let u = Frame {
            dst: FrameDst::Unicast(HostId(2)),
            ..f.clone()
        };
        assert!(u.accepted_by(HostId(2), |_| false));
        assert!(!u.accepted_by(HostId(3), |_| true));

        let b = Frame {
            dst: FrameDst::Broadcast,
            ..f
        };
        assert!(b.accepted_by(HostId(9), |_| false));
    }
}
