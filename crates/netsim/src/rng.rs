//! Deterministic random number generation for the simulator.
//!
//! The simulator cannot use a global or time-seeded RNG: every run with the
//! same experiment seed must be bit-identical so that figures regenerate
//! exactly and failures replay. We use SplitMix64, which is tiny, fast, and
//! splittable — each component (hub backoff, per-rank skew, loss injection)
//! forks its own independent stream from the experiment seed.

/// A SplitMix64 generator.
///
/// Passes BigCrush for the purposes of this simulator (backoff jitter, start
/// skew, loss coin-flips); not cryptographic.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method so the distribution is
    /// exactly uniform.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let (hi, lo) = mul_wide(x, bound);
            // Rejection zone keeps the mapping unbiased.
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn coin(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Fork an independent stream for a named component.
    ///
    /// The child stream is decorrelated from the parent by hashing the
    /// parent's next output with the stream id.
    pub fn fork(&mut self, stream: u64) -> SplitMix64 {
        let base = self.next_u64();
        SplitMix64::new(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[inline]
fn mul_wide(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn next_below_hits_all_small_values() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..500 {
            let v = r.range_inclusive(10, 12);
            assert!((10..=12).contains(&v));
        }
        assert_eq!(r.range_inclusive(5, 5), 5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn coin_extremes() {
        let mut r = SplitMix64::new(13);
        assert!(!r.coin(0.0));
        assert!(r.coin(1.0));
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = SplitMix64::new(99);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }
}
