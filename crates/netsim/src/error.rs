//! Simulation error types.

use std::fmt;

use crate::time::SimTime;

/// Why a cluster run failed.
#[derive(Debug, Clone)]
pub enum SimError {
    /// Every live rank is blocked in a receive and no network event can
    /// wake any of them — the program under simulation deadlocked.
    Deadlock {
        /// Virtual time at which the deadlock was detected.
        at: SimTime,
        /// Human-readable description of who is blocked on what.
        detail: String,
    },
    /// A rank's thread panicked.
    RankPanicked {
        /// The rank that panicked.
        rank: usize,
        /// Panic payload, when it was a string.
        message: String,
    },
    /// Virtual time exceeded the configured limit (livelock guard).
    TimeLimitExceeded {
        /// The limit that was exceeded.
        limit: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at, detail } => {
                write!(f, "simulation deadlocked at {at}: {detail}")
            }
            SimError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            SimError::TimeLimitExceeded { limit } => {
                write!(f, "virtual time limit {limit} exceeded (livelock?)")
            }
        }
    }
}

impl std::error::Error for SimError {}
