//! Store-and-forward Fast Ethernet switch with IGMP snooping.
//!
//! Star topology: each host hangs off its own full-duplex port, so there
//! are no collisions — the costs are serialization on two links, the
//! switch's forwarding latency, and queueing at contended output ports.
//! A managed switch (like the paper's HP ProCurve) snoops IGMP membership
//! reports and forwards multicast frames only to member ports; an unmanaged
//! one floods them everywhere.
//!
//! The state is split in two so the parallel engine
//! ([`crate::parallel`]) can shard it: [`SwitchTables`] holds the
//! read-mostly forwarding state (MAC learning + snooped membership,
//! shared behind a lock), while each [`OutPort`] is owned by the shard
//! of the host it feeds. The sequential [`Switch`] keeps both together
//! and is what the event-loop engine uses.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::frame::Frame;
use crate::ids::{GroupId, HostId, SwitchPort};

/// One output port's transmit queue.
#[derive(Debug, Default)]
pub struct OutPort {
    /// Frames waiting for the wire.
    queue: VecDeque<Frame>,
    /// Queued MAC-payload bytes (for tail-drop accounting).
    queued_bytes: usize,
    /// True while serializing a frame onto the host link.
    pub tx_busy: bool,
}

impl OutPort {
    /// Try to enqueue `frame` under the tail-drop threshold `limit`
    /// (queued MAC-payload bytes). Returns `Ok(kick)` where `kick` is
    /// true if the port was idle (caller starts transmission), or
    /// `Err(())` on tail drop.
    #[allow(clippy::result_unit_err)]
    pub fn enqueue(&mut self, frame: Frame, limit: usize) -> Result<bool, ()> {
        let fbytes = frame.mac_payload as usize;
        if self.queued_bytes + fbytes > limit {
            return Err(());
        }
        self.queue.push_back(frame);
        self.queued_bytes += fbytes;
        Ok(!self.tx_busy)
    }

    /// Dequeue the next frame for transmission.
    pub fn dequeue(&mut self) -> Option<Frame> {
        let f = self.queue.pop_front()?;
        self.queued_bytes -= f.mac_payload as usize;
        Some(f)
    }

    /// Frames queued (excluding any in flight).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// The switch's forwarding state: MAC learning table plus IGMP-snooped
/// group membership. Separated from the port queues so the parallel
/// engine can share it read-mostly across shards.
#[derive(Debug, Clone)]
pub struct SwitchTables {
    /// MAC learning table: station -> port.
    mac_table: HashMap<HostId, SwitchPort>,
    /// IGMP-snooped group membership: group -> member ports.
    group_table: HashMap<GroupId, HashSet<SwitchPort>>,
    /// Number of host ports (for flooding).
    n_ports: usize,
    /// Flood multicast instead of snooping.
    flood_multicast: bool,
    /// Forward no multicast frames at all (see
    /// [`crate::params::SwitchParams::unicast_only`]).
    unicast_only: bool,
}

/// Where a frame must be forwarded.
#[derive(Debug, PartialEq, Eq)]
pub struct ForwardSet {
    /// Output ports to enqueue on.
    pub ports: Vec<SwitchPort>,
}

impl SwitchTables {
    /// Empty tables for a switch with `n_ports` host ports.
    pub fn new(n_ports: usize, flood_multicast: bool) -> Self {
        SwitchTables {
            mac_table: HashMap::new(),
            group_table: HashMap::new(),
            n_ports,
            flood_multicast,
            unicast_only: false,
        }
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.n_ports
    }

    /// Enable (or disable) unicast-only mode: multicast frames get an
    /// empty forwarding set. Callers count the suppressed frames
    /// themselves (per ingress frame, not per port).
    pub fn set_unicast_only(&mut self, on: bool) {
        self.unicast_only = on;
    }

    /// True when multicast forwarding is disabled.
    pub fn unicast_only(&self) -> bool {
        self.unicast_only
    }

    /// Learn that `host` is reachable via `port` (called on every ingress).
    pub fn learn(&mut self, host: HostId, port: SwitchPort) {
        self.mac_table.insert(host, port);
    }

    /// True when the learning table already maps `host` to `port` — the
    /// parallel engine's cheap read-side check that skips the write lock
    /// on the (static star) common case.
    pub fn knows(&self, host: HostId, port: SwitchPort) -> bool {
        self.mac_table.get(&host) == Some(&port)
    }

    /// Record an IGMP join snooped on `port`.
    pub fn snoop_join(&mut self, group: GroupId, port: SwitchPort) {
        self.group_table.entry(group).or_default().insert(port);
    }

    /// Record an IGMP leave snooped on `port`.
    pub fn snoop_leave(&mut self, group: GroupId, port: SwitchPort) {
        if let Some(members) = self.group_table.get_mut(&group) {
            members.remove(&port);
            if members.is_empty() {
                self.group_table.remove(&group);
            }
        }
    }

    /// Ports currently subscribed to `group`.
    pub fn group_members(&self, group: GroupId) -> Vec<SwitchPort> {
        let mut v: Vec<SwitchPort> = self
            .group_table
            .get(&group)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// Compute the forwarding set for `frame` arriving on `in_port`.
    pub fn forward_set(&self, frame: &Frame, in_port: SwitchPort) -> ForwardSet {
        use crate::frame::FrameDst::*;
        let all_but_ingress = || -> Vec<SwitchPort> {
            (0..self.n_ports as u32)
                .map(SwitchPort)
                .filter(|p| *p != in_port)
                .collect()
        };
        let ports = match frame.dst {
            Unicast(host) => match self.mac_table.get(&host) {
                Some(&p) if p != in_port => vec![p],
                Some(_) => vec![], // destined back out the ingress port: filter
                None => all_but_ingress(), // unknown unicast: flood
            },
            Multicast(group) => {
                if self.unicast_only {
                    Vec::new()
                } else if self.flood_multicast {
                    all_but_ingress()
                } else {
                    self.group_members(group)
                        .into_iter()
                        .filter(|p| *p != in_port)
                        .collect()
                }
            }
            Broadcast => all_but_ingress(),
        };
        ForwardSet { ports }
    }
}

/// Switch state: forwarding tables plus per-port output queues (the
/// sequential engine's view; the parallel engine splits the two).
#[derive(Debug)]
pub struct Switch {
    /// Forwarding state.
    tables: SwitchTables,
    /// Output ports, indexed by port number (one per host).
    ports: Vec<OutPort>,
    /// Tail-drop threshold per port, in queued MAC-payload bytes.
    buffer_limit: usize,
}

impl Switch {
    /// A switch with `n_ports` host ports.
    pub fn new(n_ports: usize, buffer_limit: usize, flood_multicast: bool) -> Self {
        Switch {
            tables: SwitchTables::new(n_ports, flood_multicast),
            ports: (0..n_ports).map(|_| OutPort::default()).collect(),
            buffer_limit,
        }
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// The forwarding tables.
    pub fn tables(&self) -> &SwitchTables {
        &self.tables
    }

    /// Enable (or disable) unicast-only mode on the forwarding tables.
    pub fn set_unicast_only(&mut self, on: bool) {
        self.tables.set_unicast_only(on);
    }

    /// Split into `(tables, ports, buffer_limit)` — the parallel engine's
    /// conversion path: tables go behind a shared lock, each port to the
    /// shard of the host it feeds.
    pub fn split(self) -> (SwitchTables, Vec<OutPort>, usize) {
        (self.tables, self.ports, self.buffer_limit)
    }

    /// Learn that `host` is reachable via `port` (called on every ingress).
    pub fn learn(&mut self, host: HostId, port: SwitchPort) {
        self.tables.learn(host, port);
    }

    /// Record an IGMP join snooped on `port`.
    pub fn snoop_join(&mut self, group: GroupId, port: SwitchPort) {
        self.tables.snoop_join(group, port);
    }

    /// Record an IGMP leave snooped on `port`.
    pub fn snoop_leave(&mut self, group: GroupId, port: SwitchPort) {
        self.tables.snoop_leave(group, port);
    }

    /// Ports currently subscribed to `group`.
    pub fn group_members(&self, group: GroupId) -> Vec<SwitchPort> {
        self.tables.group_members(group)
    }

    /// Compute the forwarding set for `frame` arriving on `in_port`.
    pub fn forward_set(&self, frame: &Frame, in_port: SwitchPort) -> ForwardSet {
        self.tables.forward_set(frame, in_port)
    }

    /// Try to enqueue `frame` on `port`. Returns `Ok(kick)` where `kick` is
    /// true if the port was idle (caller starts transmission), or
    /// `Err(TailDrop)` when the port buffer is full.
    #[allow(clippy::result_unit_err)]
    pub fn enqueue(&mut self, port: SwitchPort, frame: Frame) -> Result<bool, ()> {
        let limit = self.buffer_limit;
        self.ports[port.index()].enqueue(frame, limit)
    }

    /// Dequeue the next frame on `port` for transmission.
    pub fn dequeue(&mut self, port: SwitchPort) -> Option<Frame> {
        self.ports[port.index()].dequeue()
    }

    /// Mutable access to a port (for the busy flag).
    pub fn port_mut(&mut self, port: SwitchPort) -> &mut OutPort {
        &mut self.ports[port.index()]
    }

    /// Frames queued on `port` (excluding any in flight).
    pub fn queue_len(&self, port: SwitchPort) -> usize {
        self.ports[port.index()].queue_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameDst, FramePayload};

    fn frame(dst: FrameDst, bytes: u32) -> Frame {
        Frame {
            id: 0,
            src: HostId(0),
            dst,
            mac_payload: bytes,
            payload: FramePayload::IgmpJoin { group: GroupId(0) },
        }
    }

    #[test]
    fn known_unicast_goes_to_learned_port() {
        let mut sw = Switch::new(4, 1 << 20, false);
        sw.learn(HostId(2), SwitchPort(2));
        let f = frame(FrameDst::Unicast(HostId(2)), 100);
        assert_eq!(sw.forward_set(&f, SwitchPort(0)).ports, vec![SwitchPort(2)]);
    }

    #[test]
    fn unknown_unicast_floods() {
        let sw = Switch::new(3, 1 << 20, false);
        let f = frame(FrameDst::Unicast(HostId(9)), 100);
        assert_eq!(
            sw.forward_set(&f, SwitchPort(1)).ports,
            vec![SwitchPort(0), SwitchPort(2)]
        );
    }

    #[test]
    fn unicast_back_out_ingress_is_filtered() {
        let mut sw = Switch::new(2, 1 << 20, false);
        sw.learn(HostId(1), SwitchPort(1));
        let f = frame(FrameDst::Unicast(HostId(1)), 64);
        assert!(sw.forward_set(&f, SwitchPort(1)).ports.is_empty());
    }

    #[test]
    fn multicast_follows_snooped_membership() {
        let mut sw = Switch::new(4, 1 << 20, false);
        sw.snoop_join(GroupId(5), SwitchPort(1));
        sw.snoop_join(GroupId(5), SwitchPort(3));
        let f = frame(FrameDst::Multicast(GroupId(5)), 100);
        // Ingress port 1 is excluded even though it is a member.
        assert_eq!(sw.forward_set(&f, SwitchPort(1)).ports, vec![SwitchPort(3)]);
        assert_eq!(
            sw.forward_set(&f, SwitchPort(0)).ports,
            vec![SwitchPort(1), SwitchPort(3)]
        );
    }

    #[test]
    fn multicast_without_members_goes_nowhere() {
        let sw = Switch::new(4, 1 << 20, false);
        let f = frame(FrameDst::Multicast(GroupId(9)), 100);
        assert!(sw.forward_set(&f, SwitchPort(0)).ports.is_empty());
    }

    #[test]
    fn unmanaged_switch_floods_multicast() {
        let sw = Switch::new(3, 1 << 20, true);
        let f = frame(FrameDst::Multicast(GroupId(9)), 100);
        assert_eq!(
            sw.forward_set(&f, SwitchPort(2)).ports,
            vec![SwitchPort(0), SwitchPort(1)]
        );
    }

    #[test]
    fn leave_removes_membership() {
        let mut sw = Switch::new(4, 1 << 20, false);
        sw.snoop_join(GroupId(1), SwitchPort(0));
        sw.snoop_join(GroupId(1), SwitchPort(2));
        sw.snoop_leave(GroupId(1), SwitchPort(0));
        assert_eq!(sw.group_members(GroupId(1)), vec![SwitchPort(2)]);
        sw.snoop_leave(GroupId(1), SwitchPort(2));
        assert!(sw.group_members(GroupId(1)).is_empty());
    }

    #[test]
    fn tail_drop_when_buffer_full() {
        let mut sw = Switch::new(1, 150, false);
        let f = || frame(FrameDst::Broadcast, 100);
        assert_eq!(sw.enqueue(SwitchPort(0), f()), Ok(true));
        assert!(sw.enqueue(SwitchPort(0), f()).is_err(), "over limit");
        // Draining frees space.
        assert!(sw.dequeue(SwitchPort(0)).is_some());
        assert_eq!(sw.enqueue(SwitchPort(0), f()), Ok(true));
    }

    #[test]
    fn enqueue_reports_busy_port() {
        let mut sw = Switch::new(1, 1 << 20, false);
        sw.port_mut(SwitchPort(0)).tx_busy = true;
        assert_eq!(
            sw.enqueue(SwitchPort(0), frame(FrameDst::Broadcast, 64)),
            Ok(false)
        );
        assert_eq!(sw.queue_len(SwitchPort(0)), 1);
    }

    #[test]
    fn dequeue_fifo_order() {
        let mut sw = Switch::new(1, 1 << 20, false);
        for i in 0..3 {
            let mut f = frame(FrameDst::Broadcast, 64);
            f.id = i;
            sw.enqueue(SwitchPort(0), f).unwrap();
        }
        assert_eq!(sw.dequeue(SwitchPort(0)).unwrap().id, 0);
        assert_eq!(sw.dequeue(SwitchPort(0)).unwrap().id, 1);
        assert_eq!(sw.dequeue(SwitchPort(0)).unwrap().id, 2);
        assert!(sw.dequeue(SwitchPort(0)).is_none());
    }

    #[test]
    fn split_preserves_tables_and_queues() {
        let mut sw = Switch::new(3, 1 << 20, false);
        sw.learn(HostId(2), SwitchPort(2));
        sw.snoop_join(GroupId(7), SwitchPort(1));
        sw.enqueue(SwitchPort(1), frame(FrameDst::Broadcast, 64))
            .unwrap();
        let (tables, mut ports, limit) = sw.split();
        assert_eq!(limit, 1 << 20);
        assert!(tables.knows(HostId(2), SwitchPort(2)));
        assert_eq!(tables.group_members(GroupId(7)), vec![SwitchPort(1)]);
        assert_eq!(ports[1].queue_len(), 1);
        assert!(ports[1].dequeue().is_some());
    }
}
