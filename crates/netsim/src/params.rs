//! Model parameters for the simulated testbed.
//!
//! Defaults reproduce the paper's platform: 100 Mbps Fast Ethernet, either a
//! shared hub (one CSMA/CD collision domain) or a store-and-forward managed
//! switch with IGMP multicast awareness, and late-1990s commodity host
//! software overheads (MPICH over UDP sockets on Pentium-III Linux boxes).
//! Absolute host-overhead constants are calibration knobs — the figures the
//! harness regenerates depend on their rough magnitude, not exact values.
//!
//! # Fault-injection knobs
//!
//! [`FaultParams`] turns the lossless testbed into an adversarial one. All
//! probabilities are per *frame arrival on one receiving link* (so a
//! multicast frame crossing a 4-port switch rolls four independent dice),
//! all draws come from a dedicated deterministic RNG stream, and every
//! knob defaults to "off":
//!
//! | knob | unit | default | effect |
//! |---|---|---|---|
//! | `drop_prob` | probability per link-arrival | 0.0 | frame silently lost |
//! | `dup_prob` | probability per delivered frame | 0.0 | frame delivered twice |
//! | `reorder_prob` | probability per delivered frame | 0.0 | frame delayed |
//! | `reorder_max_delay` | virtual time | 500 µs | bound on the extra delay |
//! | `per_link_drop` | list of `(host, prob)` | empty | per-link override of `drop_prob` |
//! | `per_link_extra_delay` | list of `(host, delay)` | empty | extra latency on frames arriving at `host` |
//! | `topology` | scheduled ops | empty | scripted holds / partitions / heals ([`TopologyScript`]) |
//!
//! The separate, older [`NetParams::frame_loss_prob`] models hardware bit
//! errors (one roll per frame, not per link) and is kept for the paper's
//! §2 ablations; new scenario code should prefer [`FaultParams`].

use crate::ids::HostId;
use crate::time::SimDuration;
use crate::topology::TopologyScript;

/// Ethernet physical/MAC layer constants.
#[derive(Clone, Debug)]
pub struct EthernetParams {
    /// Link bandwidth in bits per second (100 Mbps Fast Ethernet).
    pub bandwidth_bps: u64,
    /// Preamble + start-frame-delimiter bytes (7 + 1).
    pub preamble_bytes: u32,
    /// MAC header bytes (dst 6 + src 6 + ethertype 2).
    pub mac_header_bytes: u32,
    /// Frame check sequence bytes.
    pub fcs_bytes: u32,
    /// Inter-frame gap, expressed in byte-times (12 bytes = 96 bit-times).
    pub ifg_bytes: u32,
    /// Minimum MAC payload (frames are padded up to this).
    pub min_payload_bytes: u32,
    /// Maximum MAC payload (the IP MTU).
    pub mtu_bytes: u32,
    /// One-way propagation delay across a cable segment.
    pub prop_delay: SimDuration,
    /// CSMA/CD slot time (512 bit-times) used for collision backoff.
    pub slot_time: SimDuration,
    /// Cap on the binary-exponential-backoff exponent (IEEE 802.3: 10).
    pub max_backoff_exp: u32,
    /// Attempts before a frame is dropped as undeliverable (IEEE 802.3: 16).
    pub max_attempts: u32,
}

impl Default for EthernetParams {
    fn default() -> Self {
        EthernetParams {
            bandwidth_bps: 100_000_000,
            preamble_bytes: 8,
            mac_header_bytes: 14,
            fcs_bytes: 4,
            ifg_bytes: 12,
            min_payload_bytes: 46,
            mtu_bytes: 1500,
            prop_delay: SimDuration::from_nanos(500),
            // 512 bit-times at 100 Mbps = 5.12 us.
            slot_time: SimDuration::from_nanos(5_120),
            max_backoff_exp: 10,
            max_attempts: 16,
        }
    }
}

impl EthernetParams {
    /// Time to serialize `n` bytes onto the wire.
    #[inline]
    pub fn byte_time(&self, n: u64) -> SimDuration {
        // ns = bytes * 8 bits * 1e9 / bps. For 100 Mbps this is 80 ns/byte.
        SimDuration::from_nanos(n * 8 * 1_000_000_000 / self.bandwidth_bps)
    }

    /// Total wire occupancy of a frame carrying `payload` MAC-payload bytes:
    /// preamble + header + padded payload + FCS, **excluding** the
    /// inter-frame gap (accounted separately so back-to-back frames space
    /// correctly).
    pub fn frame_wire_time(&self, payload: u32) -> SimDuration {
        let padded = payload.max(self.min_payload_bytes);
        let total = self.preamble_bytes + self.mac_header_bytes + padded + self.fcs_bytes;
        self.byte_time(total as u64)
    }

    /// The inter-frame gap duration.
    #[inline]
    pub fn ifg_time(&self) -> SimDuration {
        self.byte_time(self.ifg_bytes as u64)
    }

    /// Wire time of a frame plus the mandatory gap before the next one.
    pub fn frame_slot(&self, payload: u32) -> SimDuration {
        self.frame_wire_time(payload) + self.ifg_time()
    }
}

/// IP/UDP encapsulation constants.
#[derive(Clone, Debug)]
pub struct IpParams {
    /// IPv4 header bytes (no options).
    pub ip_header_bytes: u32,
    /// UDP header bytes.
    pub udp_header_bytes: u32,
}

impl Default for IpParams {
    fn default() -> Self {
        IpParams {
            ip_header_bytes: 20,
            udp_header_bytes: 8,
        }
    }
}

impl IpParams {
    /// Number of Ethernet frames needed for a UDP payload of `len` bytes
    /// under MTU `mtu`, following IPv4 fragmentation rules (fragment data
    /// sizes are multiples of 8 except the last).
    pub fn fragments_for(&self, len: u32, mtu: u32) -> u32 {
        let ip_payload = len + self.udp_header_bytes;
        let max_frag_data = (mtu - self.ip_header_bytes) & !7; // multiple of 8
        if ip_payload <= mtu - self.ip_header_bytes {
            return 1;
        }
        ip_payload.div_ceil(max_frag_data)
    }

    /// MAC payload length (IP header + fragment data) of fragment `i` of a
    /// UDP payload of `len` bytes, `i` in `0..fragments_for(len, mtu)`.
    pub fn fragment_mac_payload(&self, len: u32, mtu: u32, i: u32) -> u32 {
        let ip_payload = len + self.udp_header_bytes;
        let nfrags = self.fragments_for(len, mtu);
        if nfrags == 1 {
            return self.ip_header_bytes + ip_payload;
        }
        let max_frag_data = (mtu - self.ip_header_bytes) & !7;
        if i + 1 < nfrags {
            self.ip_header_bytes + max_frag_data
        } else {
            self.ip_header_bytes + (ip_payload - max_frag_data * (nfrags - 1))
        }
    }
}

/// Host software model (LogP-style fixed + per-byte costs).
#[derive(Clone, Debug)]
pub struct HostParams {
    /// Fixed CPU cost to post a UDP send (syscall + stack traversal).
    pub o_send: SimDuration,
    /// Fixed CPU cost to complete a UDP receive.
    pub o_recv: SimDuration,
    /// Cost of injecting kernel-generated traffic (the TCP-ack model used
    /// for the MPICH-over-TCP baseline): acks are produced inside the
    /// kernel, far cheaper than an application send.
    pub o_kernel_send: SimDuration,
    /// Per-byte copy cost on send (user -> kernel -> NIC).
    pub send_per_byte: SimDuration,
    /// Per-byte copy cost on receive.
    pub recv_per_byte: SimDuration,
    /// Socket receive buffer capacity in bytes; datagrams arriving when the
    /// buffer is full are dropped (the classic fast-sender overrun).
    pub rx_buffer_bytes: usize,
    /// The paper's loss model (§1/§2): when true a datagram is discarded
    /// unless a receive is already posted on the matching socket — the
    /// behaviour the scout synchronization exists to protect against.
    pub strict_posted_recv: bool,
}

impl Default for HostParams {
    fn default() -> Self {
        HostParams {
            o_send: SimDuration::from_micros(55),
            o_recv: SimDuration::from_micros(50),
            o_kernel_send: SimDuration::from_micros(6),
            send_per_byte: SimDuration::from_nanos(12),
            recv_per_byte: SimDuration::from_nanos(12),
            rx_buffer_bytes: 64 * 1024,
            strict_posted_recv: false,
        }
    }
}

/// When the switch may begin forwarding a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchMode {
    /// Receive the complete frame before forwarding (the paper's managed
    /// Fast Ethernet switch; adds one full frame time per hop).
    StoreAndForward,
    /// Begin forwarding after the destination address is in — models the
    /// low-latency fabrics of the paper's future-work section. The value
    /// is the number of bytes that must arrive before cut-through starts
    /// (≥ 14 for the MAC header; 64 models fragment-free cut-through).
    CutThrough {
        /// Bytes received before forwarding starts.
        header_bytes: u32,
    },
}

/// Switch model (store-and-forward or cut-through).
#[derive(Clone, Debug)]
pub struct SwitchParams {
    /// Forwarding start rule.
    pub mode: SwitchMode,
    /// Fixed processing latency between frame receipt (per
    /// [`SwitchMode`]) and the frame entering the output queue (lookup +
    /// switching fabric).
    pub forwarding_latency: SimDuration,
    /// Per-output-port FIFO capacity in bytes; overflowing frames are
    /// dropped (tail drop).
    pub port_buffer_bytes: usize,
    /// When true the switch floods multicast frames to all ports instead of
    /// using IGMP-snooped membership (an unmanaged switch).
    pub flood_multicast: bool,
    /// When true the fabric forwards **no** multicast frames at all —
    /// they are dropped at the switch and tallied in
    /// [`crate::stats::NetStats::unicast_only_drops`]. Models networks
    /// with multicast routing disabled (most WANs, many cloud fabrics),
    /// the regime the epidemic Advr/Want dissemination plane exists for
    /// (`docs/PROTOCOL.md` §11). Overrides `flood_multicast`.
    pub unicast_only: bool,
}

impl Default for SwitchParams {
    fn default() -> Self {
        SwitchParams {
            mode: SwitchMode::StoreAndForward,
            forwarding_latency: SimDuration::from_micros(10),
            port_buffer_bytes: 512 * 1024,
            flood_multicast: false,
            unicast_only: false,
        }
    }
}

/// Fault-injection parameters (see the module docs for the knob table).
///
/// All faults are applied at the receiving end of a link — after the frame
/// has occupied the wire and been forwarded, mirroring where real loss
/// happens (a NIC or port dropping an arrived frame). Draws come from an
/// RNG stream forked *independently* of the backoff/skew streams, so
/// enabling faults never perturbs the timing of the surviving frames, and
/// a lossy run replays byte-identically for a fixed seed.
#[derive(Clone, Debug)]
pub struct FaultParams {
    /// Probability an arriving frame is dropped on a link (per receiver).
    /// Unit: probability in `[0, 1]`. Default `0.0`.
    pub drop_prob: f64,
    /// Probability a delivered frame is delivered a second time, one frame
    /// slot later. Unit: probability in `[0, 1]`. Default `0.0`.
    pub dup_prob: f64,
    /// Probability a delivered frame is held back and re-injected after a
    /// uniform extra delay in `(0, reorder_max_delay]`, letting frames
    /// behind it overtake. Unit: probability in `[0, 1]`. Default `0.0`.
    pub reorder_prob: f64,
    /// Upper bound on the extra delay of a reordered frame.
    /// Unit: virtual time. Default 500 µs (a few large-frame slots).
    pub reorder_max_delay: SimDuration,
    /// Per-receiving-link overrides of `drop_prob`: `(host, prob)` makes
    /// every frame arriving at `host`'s link roll `prob` instead of the
    /// global default. Default: empty.
    pub per_link_drop: Vec<(HostId, f64)>,
    /// Heterogeneous link latency: `(host, delay)` adds `delay` to every
    /// frame arriving at `host`'s link (a slow last hop — longer cable
    /// run, congested edge port, WAN-ish member). Applied *after* the
    /// fault dice with no RNG draw of its own, so turning it on never
    /// perturbs which frames the other knobs hit. Default: empty.
    pub per_link_extra_delay: Vec<(HostId, SimDuration)>,
    /// Scheduled topology faults — holds, partitions, heals (see
    /// [`TopologyScript`]). The old one-shot partition window is
    /// [`TopologyScript::partition_window`]. Default: empty.
    pub topology: TopologyScript,
}

impl Default for FaultParams {
    fn default() -> Self {
        FaultParams {
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_max_delay: SimDuration::from_micros(500),
            per_link_drop: Vec::new(),
            per_link_extra_delay: Vec::new(),
            topology: TopologyScript::default(),
        }
    }
}

impl FaultParams {
    /// A uniform-loss preset: every link drops with probability `p`.
    pub fn uniform_loss(p: f64) -> Self {
        FaultParams {
            drop_prob: p,
            ..Default::default()
        }
    }

    /// Effective drop probability for frames arriving at `dst`'s link.
    #[inline]
    pub fn drop_prob_for(&self, dst: HostId) -> f64 {
        self.per_link_drop
            .iter()
            .find(|(h, _)| *h == dst)
            .map(|(_, p)| *p)
            .unwrap_or(self.drop_prob)
    }

    /// Extra latency for frames arriving at `dst`'s link (zero unless
    /// overridden by `per_link_extra_delay`).
    #[inline]
    pub fn extra_delay_for(&self, dst: HostId) -> SimDuration {
        self.per_link_extra_delay
            .iter()
            .find(|(h, _)| *h == dst)
            .map(|(_, d)| *d)
            .unwrap_or(SimDuration::from_nanos(0))
    }

    /// True when no knob is set — the fast path never rolls the RNG.
    #[inline]
    pub fn is_inert(&self) -> bool {
        self.drop_prob <= 0.0
            && self.dup_prob <= 0.0
            && self.reorder_prob <= 0.0
            && self.per_link_drop.is_empty()
            && self.per_link_extra_delay.is_empty()
            && self.topology.is_empty()
    }
}

/// Which fabric connects the hosts.
#[derive(Clone, Debug)]
pub enum FabricKind {
    /// Shared Fast Ethernet hub: one collision domain, physical broadcast.
    Hub,
    /// Managed store-and-forward switch with per-port full-duplex links.
    Switch(SwitchParams),
}

/// Complete parameter set for a simulated cluster.
#[derive(Clone, Debug)]
pub struct NetParams {
    /// Ethernet MAC/PHY constants.
    pub ethernet: EthernetParams,
    /// IP/UDP encapsulation constants.
    pub ip: IpParams,
    /// Host software costs.
    pub host: HostParams,
    /// Hub or switch.
    pub fabric: FabricKind,
    /// Probability that any individual frame is lost on the wire
    /// (hardware-level loss; the paper assumes 0 and so do the defaults).
    pub frame_loss_prob: f64,
    /// Injected faults: per-link loss, duplication, reordering, partitions
    /// (all off by default; see [`FaultParams`]).
    pub faults: FaultParams,
    /// When true, every host tracks which `mcast-mpi` Data chunks have
    /// crossed its receiving link and tallies repeats in
    /// [`crate::stats::LinkStats::duplicate_data_chunks`]. Pure
    /// bookkeeping (no RNG, no timing effect) but off by default to keep
    /// the memory footprint of long runs flat.
    pub track_payload_crossings: bool,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            ethernet: EthernetParams::default(),
            ip: IpParams::default(),
            host: HostParams::default(),
            fabric: FabricKind::Switch(SwitchParams::default()),
            frame_loss_prob: 0.0,
            faults: FaultParams::default(),
            track_payload_crossings: false,
        }
    }
}

impl NetParams {
    /// Preset: the paper's shared Fast Ethernet hub.
    pub fn fast_ethernet_hub() -> Self {
        NetParams {
            fabric: FabricKind::Hub,
            ..Default::default()
        }
    }

    /// Preset: the paper's managed Fast Ethernet switch.
    pub fn fast_ethernet_switch() -> Self {
        NetParams {
            fabric: FabricKind::Switch(SwitchParams::default()),
            ..Default::default()
        }
    }

    /// Builder-style: inject uniform per-link frame loss with probability
    /// `p` (the headline fault-injection knob; see [`FaultParams`]).
    pub fn with_loss(mut self, p: f64) -> Self {
        self.faults.drop_prob = p;
        self
    }

    /// Builder-style: replace the whole fault plan.
    pub fn with_faults(mut self, faults: FaultParams) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style: disable multicast forwarding on the switch fabric
    /// (see [`SwitchParams::unicast_only`]).
    ///
    /// # Panics
    ///
    /// On a hub fabric — a shared hub is physical broadcast, there is no
    /// switch to filter at.
    pub fn with_unicast_only(mut self) -> Self {
        match &mut self.fabric {
            FabricKind::Switch(sp) => sp.unicast_only = true,
            FabricKind::Hub => panic!("unicast_only needs a switch fabric"),
        }
        self
    }

    /// Does this fabric drop all multicast frames (see
    /// [`SwitchParams::unicast_only`])? A hub is physical broadcast, so it
    /// is never unicast-only. Transports use this to report
    /// multicast capability to algorithm selectors.
    pub fn is_unicast_only(&self) -> bool {
        match &self.fabric {
            FabricKind::Switch(sp) => sp.unicast_only,
            FabricKind::Hub => false,
        }
    }

    /// Builder-style: enable per-link payload-crossing tracking (see
    /// [`NetParams::track_payload_crossings`]).
    pub fn with_payload_tracking(mut self) -> Self {
        self.track_payload_crossings = true;
        self
    }

    /// Preset: the paper's §5 future-work target — a VIA-like low-latency
    /// fabric. Cut-through switching with microsecond forwarding, small
    /// host overheads (user-level networking), and — like VIA's posted
    /// receive descriptors — the strict rule that a multicast is lost
    /// unless a receive is already posted. The scout synchronization is
    /// exactly what makes multicast collectives safe here.
    pub fn via_like() -> Self {
        NetParams {
            ethernet: EthernetParams {
                prop_delay: SimDuration::from_nanos(200),
                ..Default::default()
            },
            host: HostParams {
                o_send: SimDuration::from_micros(5),
                o_recv: SimDuration::from_micros(4),
                o_kernel_send: SimDuration::from_nanos(500),
                send_per_byte: SimDuration::from_nanos(2),
                recv_per_byte: SimDuration::from_nanos(2),
                strict_posted_recv: true,
                ..Default::default()
            },
            fabric: FabricKind::Switch(SwitchParams {
                mode: SwitchMode::CutThrough { header_bytes: 64 },
                forwarding_latency: SimDuration::from_micros(1),
                ..Default::default()
            }),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_time_is_80ns_at_100mbps() {
        let e = EthernetParams::default();
        assert_eq!(e.byte_time(1).as_nanos(), 80);
        assert_eq!(e.byte_time(1500).as_nanos(), 120_000);
    }

    #[test]
    fn min_frame_is_padded() {
        let e = EthernetParams::default();
        // 8 + 14 + 46 + 4 = 72 bytes minimum on the wire.
        assert_eq!(e.frame_wire_time(0).as_nanos(), 72 * 80);
        assert_eq!(e.frame_wire_time(10).as_nanos(), 72 * 80);
        assert_eq!(e.frame_wire_time(46).as_nanos(), 72 * 80);
        assert_eq!(e.frame_wire_time(47).as_nanos(), 73 * 80);
    }

    #[test]
    fn ifg_is_96_bit_times() {
        let e = EthernetParams::default();
        assert_eq!(e.ifg_time().as_nanos(), 960);
    }

    #[test]
    fn single_fragment_small_payload() {
        let ip = IpParams::default();
        assert_eq!(ip.fragments_for(0, 1500), 1);
        assert_eq!(ip.fragments_for(100, 1500), 1);
        // 1472 data + 8 UDP header = 1480 = exactly one MTU of IP payload.
        assert_eq!(ip.fragments_for(1472, 1500), 1);
        assert_eq!(ip.fragments_for(1473, 1500), 2);
    }

    #[test]
    fn paper_frame_count_formula_matches() {
        // Paper: floor(M/T) + 1 frames for an M-byte message, T = MTU.
        // Our IPv4 fragmentation gives the same count for the paper's sizes.
        let ip = IpParams::default();
        for m in [0u32, 500, 1000, 2000, 3000, 4000, 5000] {
            let paper = m / 1500 + 1;
            assert_eq!(ip.fragments_for(m, 1500), paper, "M = {m}");
        }
    }

    #[test]
    fn fragment_payload_sizes_sum_correctly() {
        let ip = IpParams::default();
        for len in [0u32, 1, 1472, 1473, 2960, 5000, 20000] {
            let n = ip.fragments_for(len, 1500);
            let total: u32 = (0..n)
                .map(|i| ip.fragment_mac_payload(len, 1500, i) - ip.ip_header_bytes)
                .sum();
            assert_eq!(total, len + ip.udp_header_bytes, "len = {len}");
            for i in 0..n {
                let mac = ip.fragment_mac_payload(len, 1500, i);
                assert!(mac <= 1500, "fragment over MTU for len = {len}");
            }
        }
    }

    #[test]
    fn fault_defaults_are_inert() {
        let f = FaultParams::default();
        assert!(f.is_inert());
        assert!(!FaultParams::uniform_loss(0.1).is_inert());
        assert!(NetParams::default().faults.is_inert());
        assert!(!NetParams::default().with_loss(0.01).faults.is_inert());
    }

    #[test]
    fn per_link_drop_overrides_global() {
        let f = FaultParams {
            drop_prob: 0.1,
            per_link_drop: vec![(HostId(2), 0.5)],
            ..Default::default()
        };
        assert_eq!(f.drop_prob_for(HostId(0)), 0.1);
        assert_eq!(f.drop_prob_for(HostId(2)), 0.5);
    }

    #[test]
    fn topology_script_makes_faults_non_inert() {
        let f = FaultParams {
            topology: TopologyScript::partition_window(
                crate::time::SimTime::from_micros(10),
                SimDuration::from_micros(5),
                vec![HostId(0), HostId(1)],
            ),
            ..Default::default()
        };
        assert!(!f.is_inert());
    }

    #[test]
    fn presets_pick_fabric() {
        assert!(matches!(
            NetParams::fast_ethernet_hub().fabric,
            FabricKind::Hub
        ));
        assert!(matches!(
            NetParams::fast_ethernet_switch().fabric,
            FabricKind::Switch(_)
        ));
    }
}
