//! Deterministic co-simulation driver.
//!
//! [`run_cluster`] spawns one OS thread per MPI rank, each executing the
//! user's SPMD closure against a [`SimProcess`] handle, and interleaves
//! them with the discrete-event [`World`] so that the whole ensemble
//! executes in *virtual* time:
//!
//! 1. ranks run native code until they call into the handle (send, recv,
//!    compute, ...), which parks the thread and posts a request;
//! 2. the driver applies non-blocking requests immediately (charging LogP
//!    software overheads to the rank's local clock) in rank order;
//! 3. once every rank is parked in a blocking receive, the driver advances
//!    network events until one completes a receive, wakes exactly that
//!    rank, and goes back to 1.
//!
//! Because ranks only interact through the driver and ties are broken by
//! rank id and event sequence number, a run is a pure function of
//! `(closure, config, seed)` — the property the figure harness relies on.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::SimError;
use crate::ids::{HostId, SocketId};
use crate::params::NetParams;
use crate::process::{ProcShared, Request, Response, SimProcess, Slot};
use crate::rng::SplitMix64;
use crate::stats::NetStats;
use crate::time::{SimDuration, SimTime};
use crate::world::{Completion, RunMode, StepOutcome, World};

/// Configuration for one simulated cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of ranks (== simulated hosts).
    pub n: usize,
    /// Network and host model parameters.
    pub params: NetParams,
    /// Seed for every random stream in the run (backoff, skew).
    pub seed: u64,
    /// Each rank starts at a uniform random offset in `[0, start_skew_max]`
    /// — models the OS scheduling skew responsible for the scatter in the
    /// paper's plots. Zero disables skew.
    pub start_skew_max: SimDuration,
    /// Deliver multicast datagrams back to the sending socket
    /// (IP_MULTICAST_LOOP). The paper's collectives do not rely on it.
    pub multicast_loopback: bool,
    /// Abort if virtual time passes this limit (livelock guard).
    pub time_limit: SimDuration,
    /// Which engine advances the world. `None` (the default) consults the
    /// `MMPI_SIM_WORKERS` environment variable: unset or `0` selects
    /// [`RunMode::EventLoop`], `w >= 1` selects [`RunMode::Frames`] with
    /// `w` workers. `Some(mode)` pins the engine regardless of the
    /// environment (tests asserting exact event-loop counters do this).
    pub run_mode: Option<RunMode>,
}

impl ClusterConfig {
    /// A cluster of `n` ranks with the given network parameters and seed,
    /// no start skew, loopback off, 60 s virtual time limit.
    pub fn new(n: usize, params: NetParams, seed: u64) -> Self {
        ClusterConfig {
            n,
            params,
            seed,
            start_skew_max: SimDuration::ZERO,
            multicast_loopback: false,
            time_limit: SimDuration::from_secs(60),
            run_mode: None,
        }
    }

    /// Builder-style: set the start skew.
    pub fn with_start_skew(mut self, max: SimDuration) -> Self {
        self.start_skew_max = max;
        self
    }

    /// Builder-style: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: pin the execution engine (see
    /// [`ClusterConfig::run_mode`]).
    pub fn with_run_mode(mut self, mode: RunMode) -> Self {
        self.run_mode = Some(mode);
        self
    }

    /// The engine this config resolves to: the pinned mode if set, else
    /// the `MMPI_SIM_WORKERS` environment variable (unset, unparsable, or
    /// `0` → the event-loop engine).
    pub fn resolved_run_mode(&self) -> RunMode {
        if let Some(mode) = self.run_mode {
            return mode;
        }
        match std::env::var("MMPI_SIM_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(workers) if workers >= 1 => RunMode::Frames { workers },
            _ => RunMode::EventLoop,
        }
    }
}

/// Result of a successful cluster run.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-rank local time at which the rank's closure returned.
    pub completion_times: Vec<SimTime>,
    /// The latest completion — the paper's metric ("the longest completion
    /// time of the collective operation among all processes").
    pub makespan: SimTime,
    /// Network statistics for the whole run.
    pub stats: NetStats,
    /// Per-rank return values of the SPMD closure.
    pub outputs: Vec<R>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RankStatus {
    Running,
    BlockedRecv {
        socket: SocketId,
        timer: Option<u64>,
    },
    Done,
}

/// Run `f` as an SPMD program on a simulated cluster.
///
/// `f` is invoked once per rank on its own thread with a [`SimProcess`]
/// handle; its return values are collected into the report. Deterministic
/// for a fixed `(f, config)`.
pub fn run_cluster<F, R>(config: &ClusterConfig, f: F) -> Result<RunReport<R>, SimError>
where
    F: Fn(SimProcess) -> R + Sync,
    R: Send,
{
    assert!(config.n > 0, "cluster needs at least one rank");
    let mut world = World::with_mode(
        config.n,
        config.params.clone(),
        config.seed,
        config.resolved_run_mode(),
    );
    let mut rng = SplitMix64::new(config.seed ^ 0x5EED_5EED_5EED_5EED);
    let skews: Vec<SimTime> = (0..config.n)
        .map(|_| {
            let max = config.start_skew_max.as_nanos();
            SimTime::from_nanos(if max == 0 { 0 } else { rng.next_below(max + 1) })
        })
        .collect();

    let shareds: Vec<Arc<ProcShared>> =
        (0..config.n).map(|_| Arc::new(ProcShared::new())).collect();
    let outputs: Mutex<Vec<Option<R>>> = Mutex::new((0..config.n).map(|_| None).collect());

    let result: Result<(Vec<SimTime>, NetStats), SimError> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.n);
        for rank in 0..config.n {
            let shared = Arc::clone(&shareds[rank]);
            let start = skews[rank];
            let f = &f;
            let outputs = &outputs;
            handles.push(scope.spawn(move || {
                // Ensure the driver learns about this rank's exit even on
                // panic (the guard fires during unwinding).
                struct FinishGuard {
                    shared: Arc<ProcShared>,
                    armed: bool,
                }
                impl Drop for FinishGuard {
                    fn drop(&mut self) {
                        if self.armed {
                            *self.shared.slot.lock() = Slot::Finished { panicked: true };
                            self.shared.to_driver.notify_one();
                        }
                    }
                }
                let mut guard = FinishGuard {
                    shared: Arc::clone(&shared),
                    armed: true,
                };
                let proc = SimProcess::new(Arc::clone(&shared), rank, start);
                let out = f(proc);
                outputs.lock()[rank] = Some(out);
                guard.armed = false;
                *shared.slot.lock() = Slot::Finished { panicked: false };
                shared.to_driver.notify_one();
            }));
        }
        let r = drive(config, &mut world, &shareds, skews);
        // Join every rank thread; panics were already converted into
        // driver-level errors (or are the expected abort unwinds).
        for h in handles {
            let _ = h.join();
        }
        r
    });

    let (completion_times, stats) = result?;
    let makespan = completion_times
        .iter()
        .copied()
        .fold(SimTime::ZERO, SimTime::max);
    let outputs: Vec<R> = outputs
        .into_inner()
        .into_iter()
        .map(|o| o.expect("every rank finished normally"))
        .collect();
    Ok(RunReport {
        completion_times,
        makespan,
        stats,
        outputs,
    })
}

/// Wait until `shared` holds a request or a finish marker, then return a
/// taken `Request` (slot left `Idle`, rank parked) or `None` for finished.
fn wait_for_request(shared: &ProcShared) -> Option<Request> {
    let mut slot = shared.slot.lock();
    loop {
        match &*slot {
            Slot::Requested(_) => {
                let Slot::Requested(req) = std::mem::replace(&mut *slot, Slot::Idle) else {
                    unreachable!();
                };
                return Some(req);
            }
            Slot::Finished { .. } => return None,
            _ => shared.to_driver.wait(&mut slot),
        }
    }
}

fn respond(shared: &ProcShared, resp: Response, at: SimTime) {
    let mut slot = shared.slot.lock();
    *slot = Slot::Responded(resp, at);
    shared.to_proc.notify_one();
}

fn rank_panicked(shared: &ProcShared) -> bool {
    matches!(*shared.slot.lock(), Slot::Finished { panicked: true })
}

#[allow(clippy::too_many_lines)]
fn drive(
    config: &ClusterConfig,
    world: &mut World,
    shareds: &[Arc<ProcShared>],
    skews: Vec<SimTime>,
) -> Result<(Vec<SimTime>, NetStats), SimError> {
    let n = config.n;
    let hp = config.params.host.clone();
    let mut status = vec![RankStatus::Running; n];
    let mut local = skews;
    let mut next_token: u64 = 0;
    let mut pending: Vec<Option<Request>> = (0..n).map(|_| None).collect();
    let time_limit = SimTime::ZERO + config.time_limit;

    let abort = loop {
        // Phase 1: collect a request (or exit notice) from every running rank.
        let mut panicked_rank = None;
        for i in 0..n {
            if status[i] != RankStatus::Running || pending[i].is_some() {
                continue;
            }
            match wait_for_request(&shareds[i]) {
                Some(req) => pending[i] = Some(req),
                None => {
                    if rank_panicked(&shareds[i]) {
                        panicked_rank = Some(i);
                    }
                    status[i] = RankStatus::Done;
                }
            }
        }
        if let Some(rank) = panicked_rank {
            break Some(SimError::RankPanicked {
                rank,
                message: "rank closure panicked (see stderr)".into(),
            });
        }

        // Phase 2: apply non-blocking requests in rank order.
        let mut any_immediate = false;
        for i in 0..n {
            let Some(req) = pending[i].take() else {
                continue;
            };
            let host = HostId(i as u32);
            match req {
                Request::Bind { port } => {
                    let sid = world.bind(host, port);
                    respond(&shareds[i], Response::Socket(sid), local[i]);
                    any_immediate = true;
                }
                Request::JoinQuiet { socket, group } => {
                    world.join_group_quiet(host, socket, group);
                    respond(&shareds[i], Response::Done, local[i]);
                    any_immediate = true;
                }
                Request::LeaveQuiet { socket, group } => {
                    world.leave_group_quiet(host, socket, group);
                    respond(&shareds[i], Response::Done, local[i]);
                    any_immediate = true;
                }
                Request::JoinIgmp { socket, group } => {
                    local[i] += hp.o_send;
                    world.join_group_igmp(host, socket, group, local[i]);
                    respond(&shareds[i], Response::Done, local[i]);
                    any_immediate = true;
                }
                Request::Now => {
                    respond(&shareds[i], Response::Time, local[i]);
                    any_immediate = true;
                }
                Request::Compute { dur } => {
                    local[i] += dur;
                    respond(&shareds[i], Response::Done, local[i]);
                    any_immediate = true;
                }
                Request::Send {
                    socket,
                    dst,
                    dst_port,
                    payload,
                    kernel,
                } => {
                    let len = payload.len() as u64;
                    local[i] += if kernel {
                        hp.o_kernel_send
                    } else {
                        hp.o_send + hp.send_per_byte * len
                    };
                    let src_port = world.host(host).socket(socket).port;
                    world.send_datagram(
                        host,
                        src_port,
                        dst,
                        dst_port,
                        payload,
                        local[i],
                        config.multicast_loopback,
                        kernel,
                    );
                    respond(&shareds[i], Response::Done, local[i]);
                    any_immediate = true;
                }
                Request::Recv { socket, timeout } => {
                    // Ranks only run while the world is paused, so any
                    // buffered datagram arrived at or before the rank's
                    // local time — it can complete the receive directly.
                    if let Some((_arrived, dg)) = world.try_pop_buffered(host, socket) {
                        local[i] += hp.o_recv + hp.recv_per_byte * dg.payload.len() as u64;
                        respond(&shareds[i], Response::Datagram(Some(dg)), local[i]);
                        any_immediate = true;
                    } else {
                        // The receive becomes *posted* at the rank's local
                        // time, not at the (earlier) world time — crucial
                        // for the strict posted-receive loss model.
                        world.schedule_post_recv(host, socket, local[i]);
                        let timer = timeout.map(|t| {
                            let token = next_token;
                            next_token += 1;
                            world.schedule_timer(host, Some(socket), token, local[i] + t);
                            token
                        });
                        status[i] = RankStatus::BlockedRecv { socket, timer };
                    }
                }
            }
        }
        if status.iter().all(|s| *s == RankStatus::Done) {
            break None;
        }
        if any_immediate {
            continue;
        }
        if status.iter().all(|s| s == &RankStatus::Done) {
            break None;
        }

        // Phase 3: everyone alive is blocked; advance the network.
        match world.run_until_completion() {
            StepOutcome::Quiescent => {
                let detail: Vec<String> = status
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| match s {
                        RankStatus::BlockedRecv { socket, .. } => {
                            Some(format!("rank {i} blocked in recv on socket {}", socket.0))
                        }
                        _ => None,
                    })
                    .collect();
                break Some(SimError::Deadlock {
                    at: world.now(),
                    detail: detail.join("; "),
                });
            }
            StepOutcome::Advanced { now, completions } => {
                if now > time_limit {
                    break Some(SimError::TimeLimitExceeded { limit: time_limit });
                }
                for c in completions {
                    match c {
                        Completion::RecvReady { host, socket, at } => {
                            let i = host.index();
                            let RankStatus::BlockedRecv { socket: s, timer } = status[i] else {
                                // Spurious: the rank is no longer blocked
                                // (cannot happen — deliveries only complete
                                // posted receives). Ignore defensively.
                                continue;
                            };
                            debug_assert_eq!(s, socket);
                            if let Some(tok) = timer {
                                world.cancel_timer(host, tok);
                            }
                            let (_arrived, dg) = world
                                .take_recv(host, socket)
                                .expect("completion implies a buffered datagram");
                            // Use the completion's event time, not `now`:
                            // under the frame engine the world clock is
                            // already at the frame boundary.
                            local[i] = local[i].max(at)
                                + hp.o_recv
                                + hp.recv_per_byte * dg.payload.len() as u64;
                            status[i] = RankStatus::Running;
                            respond(&shareds[i], Response::Datagram(Some(dg)), local[i]);
                        }
                        Completion::TimerFired {
                            host,
                            socket,
                            token,
                            at,
                        } => {
                            let i = host.index();
                            match status[i] {
                                RankStatus::BlockedRecv {
                                    socket: s,
                                    timer: Some(tok),
                                } if tok == token => {
                                    debug_assert_eq!(Some(s), socket);
                                    world.cancel_recv(host, s);
                                    local[i] = local[i].max(at);
                                    status[i] = RankStatus::Running;
                                    respond(&shareds[i], Response::Datagram(None), local[i]);
                                }
                                _ => {
                                    // Stale timer for an already-completed
                                    // receive; lazily cancelled.
                                }
                            }
                        }
                    }
                }
            }
        }
    };

    match abort {
        None => {
            // Let in-flight traffic settle so drop/delivery counters are
            // complete (e.g. datagrams still crossing the switch when the
            // last rank exited).
            while !matches!(world.step(), StepOutcome::Quiescent) {}
            Ok((local, world.stats().clone()))
        }
        Some(err) => {
            // Tear down: wake every parked or soon-to-ask rank with Aborted
            // until all threads have exited (their handles panic, which the
            // finish guard converts into a Finished marker).
            let mut done: Vec<bool> = status.iter().map(|s| *s == RankStatus::Done).collect();
            while !done.iter().all(|d| *d) {
                for i in 0..n {
                    if done[i] {
                        continue;
                    }
                    let shared = &shareds[i];
                    let mut slot = shared.slot.lock();
                    loop {
                        match &*slot {
                            Slot::Finished { .. } => {
                                done[i] = true;
                                break;
                            }
                            Slot::Requested(_) | Slot::Idle => {
                                *slot = Slot::Responded(Response::Aborted, local[i]);
                                shared.to_proc.notify_one();
                                // Wait for the rank to unwind.
                                while !matches!(*slot, Slot::Finished { .. }) {
                                    shared.to_driver.wait(&mut slot);
                                }
                                done[i] = true;
                                break;
                            }
                            Slot::Responded(..) => {
                                // Rank is waking from a previous response;
                                // wait for its next state.
                                shared.to_driver.wait(&mut slot);
                            }
                        }
                    }
                }
            }
            Err(err)
        }
    }
}
