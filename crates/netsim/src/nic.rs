//! Network interface card model.
//!
//! Each host owns one NIC. The NIC holds a FIFO of outbound frames, the
//! multicast address filter, and — on the hub fabric — the CSMA/CD
//! transmit-attempt state (attempt counter for binary exponential backoff).

use std::collections::{HashSet, VecDeque};

use crate::frame::Frame;
use crate::ids::GroupId;

/// Transmit-side state of a NIC.
#[derive(Debug, Default)]
pub struct Nic {
    /// Outbound frames, in order.
    tx_queue: VecDeque<Frame>,
    /// True while the NIC is serializing a frame (switch mode) or has a
    /// frame submitted to hub arbitration (hub mode).
    pub tx_busy: bool,
    /// CSMA/CD attempt count for the head-of-line frame (hub mode).
    pub attempts: u32,
    /// Multicast groups whose frames the address filter accepts.
    groups: HashSet<GroupId>,
}

impl Nic {
    /// New idle NIC with an empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a frame for transmission. Returns true if the NIC was idle and
    /// the caller should kick off transmission.
    pub fn enqueue(&mut self, frame: Frame) -> bool {
        self.tx_queue.push_back(frame);
        !self.tx_busy
    }

    /// Look at the head-of-line frame without removing it.
    pub fn head(&self) -> Option<&Frame> {
        self.tx_queue.front()
    }

    /// Remove the head-of-line frame (transmission finished or abandoned)
    /// and reset the attempt counter.
    pub fn pop_head(&mut self) -> Option<Frame> {
        self.attempts = 0;
        self.tx_queue.pop_front()
    }

    /// Frames waiting (including any currently transmitting head).
    pub fn queue_len(&self) -> usize {
        self.tx_queue.len()
    }

    /// Join a multicast group (address-filter level).
    pub fn join(&mut self, group: GroupId) {
        self.groups.insert(group);
    }

    /// Leave a multicast group.
    pub fn leave(&mut self, group: GroupId) {
        self.groups.remove(&group);
    }

    /// True if the address filter accepts frames for `group`.
    pub fn is_member(&self, group: GroupId) -> bool {
        self.groups.contains(&group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameDst, FramePayload};
    use crate::ids::HostId;

    fn frame(id: u64) -> Frame {
        Frame {
            id,
            src: HostId(0),
            dst: FrameDst::Broadcast,
            mac_payload: 46,
            payload: FramePayload::IgmpJoin { group: GroupId(0) },
        }
    }

    #[test]
    fn enqueue_reports_idle_transition() {
        let mut nic = Nic::new();
        assert!(nic.enqueue(frame(1)), "idle NIC should need a kick");
        nic.tx_busy = true;
        assert!(!nic.enqueue(frame(2)), "busy NIC should not");
        assert_eq!(nic.queue_len(), 2);
    }

    #[test]
    fn pop_resets_attempts_and_fifo_order() {
        let mut nic = Nic::new();
        nic.enqueue(frame(1));
        nic.enqueue(frame(2));
        nic.attempts = 5;
        assert_eq!(nic.pop_head().unwrap().id, 1);
        assert_eq!(nic.attempts, 0);
        assert_eq!(nic.head().unwrap().id, 2);
    }

    #[test]
    fn membership_filter() {
        let mut nic = Nic::new();
        assert!(!nic.is_member(GroupId(1)));
        nic.join(GroupId(1));
        assert!(nic.is_member(GroupId(1)));
        nic.leave(GroupId(1));
        assert!(!nic.is_member(GroupId(1)));
    }
}
