//! Per-host protocol stack: UDP sockets, fragment reassembly, delivery.
//!
//! This is the piece that exhibits the paper's central problem — IP
//! multicast is only delivered to receivers that are *ready*. Readiness has
//! two models, selected by [`crate::params::HostParams`]:
//!
//! * buffered (default): arriving datagrams queue in a bounded socket
//!   receive buffer, dropped only on overflow (fast-sender overrun);
//! * `strict_posted_recv`: a datagram is discarded unless a receive is
//!   already posted — the paper's loss model, which the scout
//!   synchronization exists to protect against.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use crate::frame::Datagram;
use crate::ids::{DatagramDst, GroupId, HostId, SocketId, UdpPort};
use crate::nic::Nic;
use crate::time::SimTime;

/// One simulated UDP socket.
#[derive(Debug)]
pub struct Socket {
    /// Bound local port.
    pub port: UdpPort,
    /// Multicast groups this socket has joined.
    pub groups: HashSet<GroupId>,
    /// Buffered datagrams: (arrival time, datagram).
    rx: VecDeque<(SimTime, Arc<Datagram>)>,
    /// Bytes currently buffered.
    rx_bytes: usize,
    /// A receive is posted and blocked (set by the co-sim driver).
    pub recv_posted: bool,
}

impl Socket {
    fn new(port: UdpPort) -> Self {
        Socket {
            port,
            groups: HashSet::new(),
            rx: VecDeque::new(),
            rx_bytes: 0,
            recv_posted: false,
        }
    }

    /// Pop the oldest buffered datagram.
    pub fn pop(&mut self) -> Option<(SimTime, Arc<Datagram>)> {
        let item = self.rx.pop_front()?;
        self.rx_bytes -= item.1.payload.len();
        Some(item)
    }

    /// Datagrams currently buffered.
    pub fn buffered(&self) -> usize {
        self.rx.len()
    }
}

/// Why a datagram could not be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFailure {
    /// No socket on this host matches (port unbound or group not joined).
    NoMatchingSocket,
    /// The matching socket's receive buffer was full.
    BufferOverflow,
    /// Strict mode: no receive was posted at arrival time.
    NoPostedReceive,
}

/// Outcome of handing a datagram to the host stack.
#[derive(Debug, PartialEq, Eq)]
pub enum Delivery {
    /// Stored in the socket buffer; a blocked receive (if any) can complete.
    Delivered {
        /// The socket that received it.
        socket: SocketId,
        /// True if a posted (blocked) receive was waiting.
        had_posted_recv: bool,
    },
    /// Dropped.
    Dropped(DeliveryFailure),
}

/// Reassembly state for one in-flight fragmented datagram.
#[derive(Debug)]
struct Reassembly {
    seen: Vec<bool>,
    remaining: u32,
}

/// A host: one NIC plus the UDP socket layer.
#[derive(Debug)]
pub struct HostStack {
    /// This host's identity.
    pub id: HostId,
    /// The network interface.
    pub nic: Nic,
    sockets: Vec<Socket>,
    reassembly: HashMap<u64, Reassembly>,
    rx_buffer_limit: usize,
    strict_posted_recv: bool,
    /// Tokens of lazily cancelled timers (the timer event is left in the
    /// queue and swallowed when it fires). Lives on the host so each
    /// parallel-engine shard cancels its own timers without global state.
    cancelled_timers: HashSet<u64>,
    /// Payload-crossing tracker ([`NetParams::track_payload_crossings`]):
    /// `(src_rank, seq, chunk_index)` of every `mcast-mpi` Data chunk that
    /// has crossed this host's link, or `None` when tracking is off.
    /// Lives on the host so the state survives the event-loop ->
    /// frame-engine conversion with no extra plumbing.
    ///
    /// [`NetParams::track_payload_crossings`]: crate::params::NetParams::track_payload_crossings
    crossing_seen: Option<HashSet<(u32, u64, u32)>>,
}

impl HostStack {
    /// New host with no sockets.
    pub fn new(id: HostId, rx_buffer_limit: usize, strict_posted_recv: bool) -> Self {
        HostStack {
            id,
            nic: Nic::new(),
            sockets: Vec::new(),
            reassembly: HashMap::new(),
            rx_buffer_limit,
            strict_posted_recv,
            cancelled_timers: HashSet::new(),
            crossing_seen: None,
        }
    }

    /// Enable (or disable) per-link payload-crossing tracking. Pure
    /// bookkeeping: no RNG draws, no timing effect — enabling it never
    /// perturbs a run's schedule.
    pub fn set_track_crossings(&mut self, on: bool) {
        self.crossing_seen = if on { Some(HashSet::new()) } else { None };
    }

    /// Record a completed datagram crossing this host's link. Returns
    /// `Some(duplicate)` when tracking is on and the datagram is an
    /// `mcast-mpi` Data chunk — `duplicate` is true when the same
    /// `(src_rank, seq, chunk_index)` already crossed this link. Returns
    /// `None` for control traffic, foreign payloads, or when tracking is
    /// off.
    ///
    /// The simulator is deliberately payload-agnostic everywhere else;
    /// this peeks at the fixed 40-byte `mmpi-wire` header (magic 0x4D43,
    /// little-endian fields) without depending on the wire crate.
    pub fn note_crossing(&mut self, dg: &Datagram) -> Option<bool> {
        let seen = self.crossing_seen.as_mut()?;
        // Gather the first 32 header bytes across payload segments.
        let mut hdr = [0u8; 32];
        let mut filled = 0;
        for s in dg.payload.segments() {
            let take = (32 - filled).min(s.len());
            hdr[filled..filled + take].copy_from_slice(&s[..take]);
            filled += take;
            if filled == 32 {
                break;
            }
        }
        let magic = u16::from_le_bytes([hdr[0], hdr[1]]);
        if filled < 32 || magic != 0x4D43 || hdr[3] != 0 {
            return None; // not an mcast-mpi Data chunk
        }
        let src_rank = u32::from_le_bytes([hdr[8], hdr[9], hdr[10], hdr[11]]);
        let seq = u64::from_le_bytes([
            hdr[16], hdr[17], hdr[18], hdr[19], hdr[20], hdr[21], hdr[22], hdr[23],
        ]);
        let chunk_index = u32::from_le_bytes([hdr[28], hdr[29], hdr[30], hdr[31]]);
        Some(!seen.insert((src_rank, seq, chunk_index)))
    }

    /// Lazily cancel the timer scheduled with `token` on this host.
    pub fn cancel_timer(&mut self, token: u64) {
        self.cancelled_timers.insert(token);
    }

    /// Consume a cancellation: true when `token` was cancelled (the
    /// pending timer event must be swallowed, not fired).
    pub fn take_timer_cancellation(&mut self, token: u64) -> bool {
        self.cancelled_timers.remove(&token)
    }

    /// Bind a new socket on `port`. Ports need not be unique across hosts,
    /// only within one (mirroring real UDP).
    pub fn bind(&mut self, port: UdpPort) -> SocketId {
        let id = SocketId(self.sockets.len() as u32);
        self.sockets.push(Socket::new(port));
        id
    }

    /// Access a socket.
    pub fn socket(&self, id: SocketId) -> &Socket {
        &self.sockets[id.index()]
    }

    /// Mutable access to a socket.
    pub fn socket_mut(&mut self, id: SocketId) -> &mut Socket {
        &mut self.sockets[id.index()]
    }

    /// Number of sockets bound.
    pub fn socket_count(&self) -> usize {
        self.sockets.len()
    }

    /// Subscribe `socket` to `group`: updates both the socket-level
    /// membership and the NIC address filter.
    pub fn join_group(&mut self, socket: SocketId, group: GroupId) {
        self.sockets[socket.index()].groups.insert(group);
        self.nic.join(group);
    }

    /// Unsubscribe `socket` from `group`. The NIC filter entry is removed
    /// only when no other socket still belongs to the group.
    pub fn leave_group(&mut self, socket: SocketId, group: GroupId) {
        self.sockets[socket.index()].groups.remove(&group);
        if !self.sockets.iter().any(|s| s.groups.contains(&group)) {
            self.nic.leave(group);
        }
    }

    /// Record receipt of fragment `index` of `count` of `datagram`.
    /// Returns the datagram when it just became complete.
    pub fn receive_fragment(
        &mut self,
        datagram: &Arc<Datagram>,
        index: u32,
        count: u32,
    ) -> Option<Arc<Datagram>> {
        if count == 1 {
            return Some(Arc::clone(datagram));
        }
        let entry = self
            .reassembly
            .entry(datagram.id)
            .or_insert_with(|| Reassembly {
                seen: vec![false; count as usize],
                remaining: count,
            });
        let slot = &mut entry.seen[index as usize];
        if !*slot {
            *slot = true;
            entry.remaining -= 1;
        }
        if entry.remaining == 0 {
            self.reassembly.remove(&datagram.id);
            Some(Arc::clone(datagram))
        } else {
            None
        }
    }

    /// Incomplete reassemblies currently held.
    pub fn pending_reassemblies(&self) -> usize {
        self.reassembly.len()
    }

    /// Find the socket a datagram should go to.
    fn match_socket(&self, dg: &Datagram) -> Option<SocketId> {
        self.sockets
            .iter()
            .position(|s| {
                s.port == dg.dst_port
                    && match dg.dst {
                        DatagramDst::Unicast(_) => true,
                        DatagramDst::Multicast(g) => s.groups.contains(&g),
                    }
            })
            .map(|i| SocketId(i as u32))
    }

    /// Deliver a complete datagram to the socket layer at time `now`.
    pub fn deliver(&mut self, dg: Arc<Datagram>, now: SimTime) -> Delivery {
        let Some(sid) = self.match_socket(&dg) else {
            return Delivery::Dropped(DeliveryFailure::NoMatchingSocket);
        };
        // The strict readiness model is a *multicast* hazard (the paper's
        // §1): unicast UDP is buffered by the kernel regardless, but an IP
        // multicast datagram is lost for any receiver not ready for it.
        let strict = self.strict_posted_recv && matches!(dg.dst, DatagramDst::Multicast(_));
        let limit = self.rx_buffer_limit;
        let sock = self.socket_mut(sid);
        if strict && !sock.recv_posted {
            return Delivery::Dropped(DeliveryFailure::NoPostedReceive);
        }
        if sock.rx_bytes + dg.payload.len() > limit {
            return Delivery::Dropped(DeliveryFailure::BufferOverflow);
        }
        let had_posted_recv = sock.recv_posted;
        sock.rx_bytes += dg.payload.len();
        sock.rx.push_back((now, dg));
        Delivery::Delivered {
            socket: sid,
            had_posted_recv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dg(id: u64, dst: DatagramDst, dst_port: u16, len: usize) -> Arc<Datagram> {
        Arc::new(Datagram {
            id,
            src_host: HostId(7),
            src_port: UdpPort(9),
            dst,
            dst_port: UdpPort(dst_port),
            payload: vec![1; len].into(),
            kernel: false,
        })
    }

    fn host() -> HostStack {
        HostStack::new(HostId(0), 1000, false)
    }

    #[test]
    fn unicast_delivery_to_bound_port() {
        let mut h = host();
        let s = h.bind(UdpPort(500));
        let d = h.deliver(
            dg(1, DatagramDst::Unicast(HostId(0)), 500, 10),
            SimTime::ZERO,
        );
        assert_eq!(
            d,
            Delivery::Delivered {
                socket: s,
                had_posted_recv: false
            }
        );
        assert_eq!(h.socket(s).buffered(), 1);
    }

    #[test]
    fn unbound_port_drops() {
        let mut h = host();
        h.bind(UdpPort(500));
        let d = h.deliver(
            dg(1, DatagramDst::Unicast(HostId(0)), 501, 10),
            SimTime::ZERO,
        );
        assert_eq!(d, Delivery::Dropped(DeliveryFailure::NoMatchingSocket));
    }

    #[test]
    fn multicast_requires_membership() {
        let mut h = host();
        let s = h.bind(UdpPort(500));
        let g = GroupId(1);
        let d = h.deliver(dg(1, DatagramDst::Multicast(g), 500, 10), SimTime::ZERO);
        assert_eq!(d, Delivery::Dropped(DeliveryFailure::NoMatchingSocket));
        h.join_group(s, g);
        let d = h.deliver(dg(2, DatagramDst::Multicast(g), 500, 10), SimTime::ZERO);
        assert!(matches!(d, Delivery::Delivered { .. }));
    }

    #[test]
    fn leave_group_updates_nic_filter_with_refcount() {
        let mut h = host();
        let s1 = h.bind(UdpPort(500));
        let s2 = h.bind(UdpPort(501));
        let g = GroupId(3);
        h.join_group(s1, g);
        h.join_group(s2, g);
        h.leave_group(s1, g);
        assert!(h.nic.is_member(g), "s2 still joined");
        h.leave_group(s2, g);
        assert!(!h.nic.is_member(g));
    }

    #[test]
    fn buffer_overflow_drops() {
        let mut h = HostStack::new(HostId(0), 15, false);
        h.bind(UdpPort(1));
        let ok = h.deliver(dg(1, DatagramDst::Unicast(HostId(0)), 1, 10), SimTime::ZERO);
        assert!(matches!(ok, Delivery::Delivered { .. }));
        let bad = h.deliver(dg(2, DatagramDst::Unicast(HostId(0)), 1, 10), SimTime::ZERO);
        assert_eq!(bad, Delivery::Dropped(DeliveryFailure::BufferOverflow));
    }

    #[test]
    fn strict_mode_requires_posted_recv_for_multicast_only() {
        let mut h = HostStack::new(HostId(0), 1000, true);
        let s = h.bind(UdpPort(1));
        let g = GroupId(4);
        h.join_group(s, g);
        // Multicast without a posted receive: lost (the paper's hazard).
        let bad = h.deliver(dg(1, DatagramDst::Multicast(g), 1, 10), SimTime::ZERO);
        assert_eq!(bad, Delivery::Dropped(DeliveryFailure::NoPostedReceive));
        // Unicast buffers in the kernel even in strict mode.
        let uni = h.deliver(dg(2, DatagramDst::Unicast(HostId(0)), 1, 10), SimTime::ZERO);
        assert!(matches!(uni, Delivery::Delivered { .. }));
        // Multicast with a posted receive: delivered.
        h.socket_mut(s).recv_posted = true;
        let ok = h.deliver(dg(3, DatagramDst::Multicast(g), 1, 10), SimTime::ZERO);
        assert_eq!(
            ok,
            Delivery::Delivered {
                socket: s,
                had_posted_recv: true
            }
        );
    }

    #[test]
    fn pop_restores_buffer_space() {
        let mut h = HostStack::new(HostId(0), 10, false);
        let s = h.bind(UdpPort(1));
        assert!(matches!(
            h.deliver(dg(1, DatagramDst::Unicast(HostId(0)), 1, 10), SimTime::ZERO),
            Delivery::Delivered { .. }
        ));
        h.socket_mut(s).pop().unwrap();
        assert!(matches!(
            h.deliver(dg(2, DatagramDst::Unicast(HostId(0)), 1, 10), SimTime::ZERO),
            Delivery::Delivered { .. }
        ));
    }

    #[test]
    fn reassembly_completes_once_per_datagram() {
        let mut h = host();
        let d = dg(42, DatagramDst::Unicast(HostId(0)), 1, 5000);
        assert!(h.receive_fragment(&d, 0, 3).is_none());
        assert!(h.receive_fragment(&d, 0, 3).is_none(), "duplicate ignored");
        assert!(h.receive_fragment(&d, 2, 3).is_none());
        assert!(h.receive_fragment(&d, 1, 3).is_some());
        assert_eq!(h.pending_reassemblies(), 0);
    }

    #[test]
    fn single_fragment_completes_immediately() {
        let mut h = host();
        let d = dg(1, DatagramDst::Unicast(HostId(0)), 1, 10);
        assert!(h.receive_fragment(&d, 0, 1).is_some());
        assert_eq!(h.pending_reassemblies(), 0);
    }

    #[test]
    fn first_matching_socket_wins() {
        let mut h = host();
        let s1 = h.bind(UdpPort(5));
        let _s2 = h.bind(UdpPort(5));
        let d = h.deliver(dg(1, DatagramDst::Unicast(HostId(0)), 5, 1), SimTime::ZERO);
        assert_eq!(
            d,
            Delivery::Delivered {
                socket: s1,
                had_posted_recv: false
            }
        );
    }
}
