//! Event tracing for debugging and model validation.
//!
//! A [`Trace`] is a bounded ring buffer of time-stamped records the world
//! appends to when tracing is enabled. It costs nothing when disabled
//! (the default), renders to a human-readable timeline, and lets tests
//! assert fine-grained properties ("the jam really occupied the medium
//! for one slot time") without polluting the statistics counters.

use std::collections::VecDeque;
use std::fmt;

use crate::ids::HostId;
use crate::time::SimTime;

/// One traced occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A frame began transmission.
    TxStart {
        /// Transmitting station.
        src: HostId,
        /// Frame id.
        frame: u64,
        /// MAC payload length.
        bytes: u32,
    },
    /// A frame was delivered to a station.
    Delivered {
        /// Receiving station.
        dst: HostId,
        /// Frame id.
        frame: u64,
    },
    /// A CSMA/CD collision among the listed stations.
    Collision {
        /// The colliding stations.
        stations: Vec<HostId>,
    },
    /// A datagram was dropped (reason as free text).
    Drop {
        /// Affected station.
        host: HostId,
        /// Why.
        reason: &'static str,
    },
}

/// A bounded, time-stamped event log.
#[derive(Debug)]
pub struct Trace {
    records: VecDeque<(SimTime, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A trace retaining at most `capacity` records (oldest evicted).
    pub fn new(capacity: usize) -> Self {
        Trace {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append a record.
    pub fn push(&mut self, at: SimTime, event: TraceEvent) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back((at, event));
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted due to the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.dropped
    }

    /// Count records matching a predicate.
    pub fn count(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.records.iter().filter(|(_, e)| pred(e)).count()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped > 0 {
            writeln!(f, "... {} earlier records evicted ...", self.dropped)?;
        }
        for (at, e) in &self.records {
            match e {
                TraceEvent::TxStart { src, frame, bytes } => {
                    writeln!(f, "{at:>14}  {src} tx start frame#{frame} ({bytes} B)")?
                }
                TraceEvent::Delivered { dst, frame } => {
                    writeln!(f, "{at:>14}  {dst} rx frame#{frame}")?
                }
                TraceEvent::Collision { stations } => {
                    let names: Vec<String> = stations.iter().map(|h| h.to_string()).collect();
                    writeln!(f, "{at:>14}  COLLISION [{}]", names.join(", "))?
                }
                TraceEvent::Drop { host, reason } => {
                    writeln!(f, "{at:>14}  {host} DROP: {reason}")?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut tr = Trace::new(10);
        tr.push(
            t(1),
            TraceEvent::TxStart {
                src: HostId(0),
                frame: 1,
                bytes: 64,
            },
        );
        tr.push(
            t(2),
            TraceEvent::Delivered {
                dst: HostId(1),
                frame: 1,
            },
        );
        assert_eq!(tr.len(), 2);
        let times: Vec<u64> = tr.records().map(|(at, _)| at.as_nanos()).collect();
        assert_eq!(times, vec![1, 2]);
        assert!(!tr.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut tr = Trace::new(3);
        for i in 0..5u64 {
            tr.push(
                t(i),
                TraceEvent::Delivered {
                    dst: HostId(0),
                    frame: i,
                },
            );
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.evicted(), 2);
        let frames: Vec<u64> = tr
            .records()
            .map(|(_, e)| match e {
                TraceEvent::Delivered { frame, .. } => *frame,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(frames, vec![2, 3, 4]);
    }

    #[test]
    fn count_filters() {
        let mut tr = Trace::new(10);
        tr.push(
            t(0),
            TraceEvent::Collision {
                stations: vec![HostId(0), HostId(1)],
            },
        );
        tr.push(
            t(1),
            TraceEvent::Delivered {
                dst: HostId(0),
                frame: 0,
            },
        );
        tr.push(
            t(2),
            TraceEvent::Collision {
                stations: vec![HostId(2), HostId(3)],
            },
        );
        assert_eq!(tr.count(|e| matches!(e, TraceEvent::Collision { .. })), 2);
    }

    #[test]
    fn display_renders_all_variants() {
        let mut tr = Trace::new(2);
        tr.push(
            t(0),
            TraceEvent::TxStart {
                src: HostId(0),
                frame: 9,
                bytes: 100,
            },
        );
        tr.push(
            t(1),
            TraceEvent::Drop {
                host: HostId(2),
                reason: "buffer full",
            },
        );
        tr.push(
            t(2),
            TraceEvent::Delivered {
                dst: HostId(1),
                frame: 9,
            },
        );
        let s = tr.to_string();
        assert!(s.contains("evicted"));
        assert!(s.contains("DROP: buffer full"));
        assert!(s.contains("rx frame#9"));
    }
}
