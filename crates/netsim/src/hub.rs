//! Shared Fast Ethernet hub: one CSMA/CD collision domain.
//!
//! A hub is a physical-layer repeater — every frame reaches every station,
//! and only one transmission can occupy the medium at a time. Stations that
//! find the medium busy defer (1-persistent CSMA); stations that start
//! simultaneously collide, jam, and retry after truncated binary exponential
//! backoff.
//!
//! ## Model simplifications (documented deviations)
//!
//! Collisions are detected at arbitration instants: whenever the medium
//! becomes free (or an idle-medium transmission is requested), every station
//! with a pending frame and an expired backoff contends; two or more
//! contenders at the same instant collide. The sub-slot-time race where a
//! second station begins transmitting within one propagation delay of the
//! first is folded into this same-instant rule. This preserves the
//! collision behaviour that matters for the paper — synchronized
//! algorithm steps making several stations transmit at once (its §4
//! six-process anomaly) — while keeping the simulation deterministic.

use crate::ids::HostId;
use crate::time::SimTime;

/// Arbitration outcome at a medium-free instant.
#[derive(Debug, PartialEq, Eq)]
pub enum Arbitration {
    /// Nobody wanted the medium.
    Idle,
    /// A single station acquired the medium and transmits.
    Winner(HostId),
    /// Two or more stations collided.
    Collision(Vec<HostId>),
}

/// Hub medium state.
#[derive(Debug)]
pub struct Hub {
    /// Stations (their NICs) waiting for the medium, in request order.
    waiters: Vec<HostId>,
    /// The medium is occupied (transmission or jam + inter-frame gap)
    /// until this instant.
    pub busy_until: SimTime,
    /// An `Event::HubArbitrate` is already scheduled for this instant.
    pub arbitrate_scheduled_at: Option<SimTime>,
}

impl Hub {
    /// New idle hub.
    pub fn new() -> Self {
        Hub {
            waiters: Vec::new(),
            busy_until: SimTime::ZERO,
            arbitrate_scheduled_at: None,
        }
    }

    /// A station requests the medium at time `now`. Returns the instant at
    /// which an arbitration event must fire, or `None` if one is already
    /// scheduled early enough to cover this request.
    pub fn request(&mut self, host: HostId, now: SimTime) -> Option<SimTime> {
        if !self.waiters.contains(&host) {
            self.waiters.push(host);
        }
        let fire_at = now.max(self.busy_until);
        match self.arbitrate_scheduled_at {
            // An arbitration at or after `fire_at` but no later than the
            // medium-free instant will see this waiter; if the scheduled one
            // is earlier than we need, it will simply re-schedule itself.
            Some(t) if t <= fire_at => None,
            _ => {
                self.arbitrate_scheduled_at = Some(fire_at);
                Some(fire_at)
            }
        }
    }

    /// Run arbitration at time `now`. Stations in `waiters` contend; the
    /// caller handles the outcome (start a transmission, or back everyone
    /// off). On a collision all contenders are removed from the wait list —
    /// they re-`request` when their backoff expires.
    pub fn arbitrate(&mut self, now: SimTime) -> Arbitration {
        self.arbitrate_scheduled_at = None;
        if now < self.busy_until {
            // Stale event (a transmission started after this was scheduled);
            // the transmission-complete path schedules a fresh arbitration.
            return Arbitration::Idle;
        }
        match self.waiters.len() {
            0 => Arbitration::Idle,
            1 => Arbitration::Winner(self.waiters.pop().expect("len checked")),
            _ => Arbitration::Collision(std::mem::take(&mut self.waiters)),
        }
    }

    /// Number of stations waiting for the medium.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// True if any station is waiting.
    pub fn has_waiters(&self) -> bool {
        !self.waiters.is_empty()
    }
}

impl Default for Hub {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_requester_wins() {
        let mut hub = Hub::new();
        let t = SimTime::from_micros(1);
        assert_eq!(hub.request(HostId(0), t), Some(t));
        assert_eq!(hub.arbitrate(t), Arbitration::Winner(HostId(0)));
        assert!(!hub.has_waiters());
    }

    #[test]
    fn simultaneous_requesters_collide() {
        let mut hub = Hub::new();
        let t = SimTime::from_micros(1);
        assert_eq!(hub.request(HostId(0), t), Some(t));
        // Second request at the same instant: arbitration already scheduled.
        assert_eq!(hub.request(HostId(1), t), None);
        match hub.arbitrate(t) {
            Arbitration::Collision(hosts) => {
                assert_eq!(hosts, vec![HostId(0), HostId(1)]);
            }
            other => panic!("expected collision, got {other:?}"),
        }
        assert!(!hub.has_waiters(), "colliders leave the wait list");
    }

    #[test]
    fn busy_medium_defers_request() {
        let mut hub = Hub::new();
        hub.busy_until = SimTime::from_micros(100);
        let t = SimTime::from_micros(10);
        // Arbitration must fire when the medium frees, not now.
        assert_eq!(hub.request(HostId(2), t), Some(SimTime::from_micros(100)));
    }

    #[test]
    fn stale_arbitration_is_idle() {
        let mut hub = Hub::new();
        let t0 = SimTime::from_micros(1);
        hub.request(HostId(0), t0);
        // A transmission claimed the medium after this event was scheduled.
        hub.busy_until = SimTime::from_micros(50);
        assert_eq!(hub.arbitrate(t0), Arbitration::Idle);
        assert!(hub.has_waiters(), "waiter kept for the rescheduled round");
    }

    #[test]
    fn duplicate_request_not_double_counted() {
        let mut hub = Hub::new();
        let t = SimTime::from_micros(1);
        hub.request(HostId(0), t);
        hub.request(HostId(0), t);
        assert_eq!(hub.waiting(), 1);
    }

    #[test]
    fn empty_arbitration_is_idle() {
        let mut hub = Hub::new();
        assert_eq!(hub.arbitrate(SimTime::ZERO), Arbitration::Idle);
    }
}
