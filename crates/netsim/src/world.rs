//! The simulated network world: hosts + fabric + event loop.
//!
//! [`World`] owns every piece of simulated state and advances it one event
//! at a time. It knows nothing about threads or MPI ranks — the co-sim
//! driver in [`crate::cluster`] injects sends/receives at chosen virtual
//! times and consumes the [`Completion`]s the world reports back.
//!
//! Fault injection hooks in at the last hop: every frame that survives
//! the fabric passes through a per-link dice roll
//! (partition, drop, reorder, duplicate — see
//! [`crate::params::FaultParams`]) before reaching the host stack. The
//! draws come from a dedicated RNG stream, so a lossless configuration
//! is byte-identical to one with fault injection compiled in but off.

use std::collections::HashSet;
use std::sync::Arc;

use crate::event::{Event, EventQueue};
use crate::frame::{fragment_datagram, Datagram, Frame, FramePayload, SharedPayload};
use crate::host::{Delivery, DeliveryFailure, HostStack};
use crate::hub::{Arbitration, Hub};
use crate::ids::{DatagramDst, GroupId, HostId, SocketId, SwitchPort, UdpPort};
use crate::params::{FabricKind, NetParams};
use crate::rng::SplitMix64;
use crate::stats::NetStats;
use crate::switch::Switch;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};

/// Something the driver has been waiting on finished.
#[derive(Debug)]
pub enum Completion {
    /// A posted receive can now complete: a datagram is buffered.
    RecvReady {
        /// Receiving host.
        host: HostId,
        /// Receiving socket.
        socket: SocketId,
    },
    /// A timer fired (receive timeout or sleep).
    TimerFired {
        /// Owning host.
        host: HostId,
        /// Guarded socket for receive timeouts.
        socket: Option<SocketId>,
        /// The token the timer was scheduled with.
        token: u64,
    },
}

/// Result of advancing the world.
#[derive(Debug)]
pub enum StepOutcome {
    /// Events were processed up to the returned time; any completions that
    /// became ready are included (possibly none).
    Advanced {
        /// New current time.
        now: SimTime,
        /// Ready completions.
        completions: Vec<Completion>,
    },
    /// No events pending — the network is silent.
    Quiescent,
}

/// Statistics class of a frame.
fn frame_class(frame: &Frame) -> crate::stats::FrameClass {
    match &frame.payload {
        FramePayload::Fragment { datagram, .. } => {
            if datagram.kernel {
                crate::stats::FrameClass::KernelAck
            } else {
                crate::stats::FrameClass::Data
            }
        }
        _ => crate::stats::FrameClass::Control,
    }
}

/// The fabric connecting hosts.
enum Fabric {
    Hub(Hub),
    Switch(Switch),
}

/// Salt decorrelating the fault-injection RNG stream from the
/// backoff/skew streams, so enabling faults never perturbs the timing of
/// surviving frames.
const FAULT_RNG_SALT: u64 = 0xFA17_ED11_FA17_ED11;

/// The simulated network.
pub struct World {
    now: SimTime,
    queue: EventQueue,
    hosts: Vec<HostStack>,
    fabric: Fabric,
    params: NetParams,
    stats: NetStats,
    rng: SplitMix64,
    fault_rng: SplitMix64,
    next_datagram_id: u64,
    next_frame_id: u64,
    cancelled_timers: HashSet<u64>,
    completions: Vec<Completion>,
    trace: Option<Trace>,
}

impl World {
    /// Build a world of `n` hosts with the given parameters and RNG seed.
    pub fn new(n: usize, params: NetParams, seed: u64) -> Self {
        let hosts = (0..n)
            .map(|i| {
                HostStack::new(
                    HostId(i as u32),
                    params.host.rx_buffer_bytes,
                    params.host.strict_posted_recv,
                )
            })
            .collect();
        let fabric = match &params.fabric {
            FabricKind::Hub => Fabric::Hub(Hub::new()),
            FabricKind::Switch(sp) => {
                let mut sw = Switch::new(n, sp.port_buffer_bytes, sp.flood_multicast);
                // Static star topology: port i <-> host i. Pre-populate the
                // learning table (a warm ARP/MAC cache) so the first unicast
                // of a run is not flooded to every port.
                for i in 0..n as u32 {
                    sw.learn(HostId(i), SwitchPort(i));
                }
                Fabric::Switch(sw)
            }
        };
        World {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            hosts,
            fabric,
            params,
            stats: NetStats::new(n),
            rng: SplitMix64::new(seed),
            fault_rng: SplitMix64::new(seed ^ FAULT_RNG_SALT),
            next_datagram_id: 0,
            next_frame_id: 0,
            cancelled_timers: HashSet::new(),
            completions: Vec::new(),
            trace: None,
        }
    }

    /// Enable event tracing with a bounded ring buffer (debugging and
    /// fine-grained model validation; off by default).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    fn trace_push(&mut self, event: TraceEvent) {
        if let Some(t) = &mut self.trace {
            let now = self.now;
            t.push(now, event);
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable statistics (e.g. to reset after warm-up).
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// Model parameters.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Access a host (tests/driver).
    pub fn host(&self, h: HostId) -> &HostStack {
        &self.hosts[h.index()]
    }

    /// Mutable access to a host (driver).
    pub fn host_mut(&mut self, h: HostId) -> &mut HostStack {
        &mut self.hosts[h.index()]
    }

    // ------------------------------------------------------------------
    // Driver-facing configuration and I/O injection
    // ------------------------------------------------------------------

    /// Bind a UDP socket on `host`.
    pub fn bind(&mut self, host: HostId, port: UdpPort) -> SocketId {
        self.hosts[host.index()].bind(port)
    }

    /// Setup-time multicast join: updates the host filter *and* the switch
    /// membership table instantly, without IGMP traffic. Models groups
    /// joined before the timed region, as MPI process groups are.
    pub fn join_group_quiet(&mut self, host: HostId, socket: SocketId, group: GroupId) {
        self.hosts[host.index()].join_group(socket, group);
        if let Fabric::Switch(sw) = &mut self.fabric {
            sw.snoop_join(group, SwitchPort(host.0));
        }
    }

    /// Setup-time leave (inverse of [`World::join_group_quiet`]).
    pub fn leave_group_quiet(&mut self, host: HostId, socket: SocketId, group: GroupId) {
        let h = &mut self.hosts[host.index()];
        h.leave_group(socket, group);
        let still_member = h.nic.is_member(group);
        if let (Fabric::Switch(sw), false) = (&mut self.fabric, still_member) {
            sw.snoop_leave(group, SwitchPort(host.0));
        }
    }

    /// Runtime multicast join: joins locally and emits an IGMP membership
    /// report frame on the wire at time `at` so a managed switch can snoop.
    pub fn join_group_igmp(&mut self, host: HostId, socket: SocketId, group: GroupId, at: SimTime) {
        self.hosts[host.index()].join_group(socket, group);
        let frame = Frame {
            id: self.fresh_frame_id(),
            src: host,
            dst: crate::frame::FrameDst::Broadcast,
            mac_payload: 46,
            payload: FramePayload::IgmpJoin { group },
        };
        self.enqueue_frames_at(host, vec![frame], at);
    }

    /// Inject a datagram send: the host stack finishes send-side processing
    /// at `at` (the driver has already charged `o_send` + copy), after which
    /// fragments head to the NIC.
    #[allow(clippy::too_many_arguments)]
    pub fn send_datagram(
        &mut self,
        host: HostId,
        src_port: UdpPort,
        dst: DatagramDst,
        dst_port: UdpPort,
        payload: SharedPayload,
        at: SimTime,
        multicast_loopback: bool,
        kernel: bool,
    ) -> u64 {
        let id = self.next_datagram_id;
        self.next_datagram_id += 1;
        let datagram = Arc::new(Datagram {
            id,
            src_host: host,
            src_port,
            dst,
            dst_port,
            payload,
            kernel,
        });
        if kernel {
            self.stats.kernel_datagrams_sent += 1;
        } else {
            self.stats.datagrams_sent += 1;
            match dst {
                DatagramDst::Multicast(_) => self.stats.mcast_datagrams_sent += 1,
                DatagramDst::Unicast(_) => self.stats.unicast_datagrams_sent += 1,
            }
        }
        match dst {
            DatagramDst::Unicast(d) if d == host => {
                // Self-send never touches the wire.
                self.queue
                    .schedule(at, Event::LoopbackDelivery { host, datagram });
            }
            _ => {
                if multicast_loopback && matches!(dst, DatagramDst::Multicast(_)) {
                    self.queue.schedule(
                        at,
                        Event::LoopbackDelivery {
                            host,
                            datagram: Arc::clone(&datagram),
                        },
                    );
                }
                self.queue
                    .schedule(at, Event::DatagramReady { host, datagram });
            }
        }
        id
    }

    /// Pop a buffered datagram, if any, without posting a receive.
    pub fn try_pop_buffered(
        &mut self,
        host: HostId,
        socket: SocketId,
    ) -> Option<(SimTime, Arc<Datagram>)> {
        self.hosts[host.index()].socket_mut(socket).pop()
    }

    /// Schedule the posting of a blocking receive at virtual time `at` (the
    /// rank's local clock when it called `recv`). Until that instant the
    /// socket counts as *not ready* — under the strict posted-receive model
    /// a datagram delivered earlier is lost, exactly the paper's hazard.
    pub fn schedule_post_recv(&mut self, host: HostId, socket: SocketId, at: SimTime) {
        self.queue.schedule(at, Event::PostRecv { host, socket });
    }

    /// Take the datagram that satisfied a [`Completion::RecvReady`] and
    /// clear the pending-receive flag.
    pub fn take_recv(
        &mut self,
        host: HostId,
        socket: SocketId,
    ) -> Option<(SimTime, Arc<Datagram>)> {
        let sock = self.hosts[host.index()].socket_mut(socket);
        sock.recv_posted = false;
        sock.pop()
    }

    /// Cancel a pending receive (timeout path).
    pub fn cancel_recv(&mut self, host: HostId, socket: SocketId) {
        self.hosts[host.index()].socket_mut(socket).recv_posted = false;
    }

    /// Schedule a timer that fires at `at` with `token`.
    pub fn schedule_timer(
        &mut self,
        host: HostId,
        socket: Option<SocketId>,
        token: u64,
        at: SimTime,
    ) {
        self.queue.schedule(
            at,
            Event::Timer {
                host,
                socket,
                token,
            },
        );
    }

    /// Lazily cancel a previously scheduled timer.
    pub fn cancel_timer(&mut self, token: u64) {
        self.cancelled_timers.insert(token);
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Process events until at least one completion is ready (returned) or
    /// the queue drains ([`StepOutcome::Quiescent`]).
    pub fn run_until_completion(&mut self) -> StepOutcome {
        loop {
            match self.step() {
                StepOutcome::Advanced { now, completions } if completions.is_empty() => {
                    let _ = now;
                    continue;
                }
                outcome => return outcome,
            }
        }
    }

    /// Process exactly one event.
    pub fn step(&mut self) -> StepOutcome {
        let Some((at, event)) = self.queue.pop() else {
            return StepOutcome::Quiescent;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.handle(event);
        StepOutcome::Advanced {
            now: self.now,
            completions: std::mem::take(&mut self.completions),
        }
    }

    fn fresh_frame_id(&mut self) -> u64 {
        let id = self.next_frame_id;
        self.next_frame_id += 1;
        id
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::DatagramReady { host, datagram } => {
                let mut next_id = self.next_frame_id;
                let frames = fragment_datagram(
                    datagram,
                    &self.params.ip,
                    self.params.ethernet.mtu_bytes,
                    || {
                        let id = next_id;
                        next_id += 1;
                        id
                    },
                );
                self.next_frame_id = next_id;
                let at = self.now;
                self.enqueue_frames_at(host, frames, at);
            }
            Event::LoopbackDelivery { host, datagram } => {
                self.deliver_datagram(host, datagram);
            }
            Event::HubArbitrate => self.hub_arbitrate(),
            Event::HubFrameDelivered { frame } => self.hub_frame_delivered(frame),
            Event::NicRetry { host } => {
                let now = self.now;
                let Fabric::Hub(hub) = &mut self.fabric else {
                    unreachable!("NicRetry only occurs on the hub fabric");
                };
                if let Some(fire_at) = hub.request(host, now) {
                    self.queue.schedule(fire_at, Event::HubArbitrate);
                }
            }
            Event::NicTxNext { host } => self.nic_tx_next(host),
            Event::SwitchIngress { frame, in_port } => self.switch_ingress(frame, in_port),
            Event::SwitchForward { frame, in_port } => self.switch_forward(frame, in_port),
            Event::PortDelivered { frame, port } => self.port_delivered(frame, port),
            Event::PortTxNext { port } => self.port_tx_next(port),
            Event::LinkRedeliver { host, frame } => self.receive_frame(host, &frame),
            Event::PostRecv { host, socket } => {
                let sock = self.hosts[host.index()].socket_mut(socket);
                sock.recv_posted = true;
                if sock.buffered() > 0 {
                    self.completions
                        .push(Completion::RecvReady { host, socket });
                }
            }
            Event::Timer {
                host,
                socket,
                token,
            } => {
                if !self.cancelled_timers.remove(&token) {
                    self.completions.push(Completion::TimerFired {
                        host,
                        socket,
                        token,
                    });
                }
            }
        }
    }

    /// Hand frames to a host NIC at time `at`, kicking transmission if idle.
    fn enqueue_frames_at(&mut self, host: HostId, frames: Vec<Frame>, at: SimTime) {
        debug_assert!(at >= self.now);
        let nic = &mut self.hosts[host.index()].nic;
        let mut kick = false;
        for f in frames {
            kick |= nic.enqueue(f);
        }
        if !kick {
            return;
        }
        nic.tx_busy = true;
        match &mut self.fabric {
            Fabric::Hub(hub) => {
                if let Some(fire_at) = hub.request(host, at) {
                    self.queue.schedule(fire_at, Event::HubArbitrate);
                }
            }
            Fabric::Switch(_) => {
                // Start serializing the head frame onto the uplink at `at`.
                self.queue.schedule(at, Event::NicTxNext { host });
            }
        }
    }

    // --- hub fabric -----------------------------------------------------

    fn hub_arbitrate(&mut self) {
        let now = self.now;
        let Fabric::Hub(hub) = &mut self.fabric else {
            unreachable!("HubArbitrate only occurs on the hub fabric");
        };
        match hub.arbitrate(now) {
            Arbitration::Idle => {}
            Arbitration::Winner(host) => {
                let frame = self.hosts[host.index()]
                    .nic
                    .pop_head()
                    .expect("winner must have a queued frame");
                let eth = self.params.ethernet.clone();
                let wire = eth.frame_wire_time(frame.mac_payload);
                let wire_bytes = (eth.preamble_bytes
                    + eth.mac_header_bytes
                    + frame.mac_payload.max(eth.min_payload_bytes)
                    + eth.fcs_bytes) as u64;
                let class = frame_class(&frame);
                self.stats
                    .record_frame_sent(host, frame.mac_payload, wire_bytes, class);
                self.trace_push(TraceEvent::TxStart {
                    src: host,
                    frame: frame.id,
                    bytes: frame.mac_payload,
                });
                let delivered_at = now + wire + eth.prop_delay;
                let Fabric::Hub(hub) = &mut self.fabric else {
                    unreachable!();
                };
                hub.busy_until = now + wire + eth.ifg_time();
                self.queue
                    .schedule(delivered_at, Event::HubFrameDelivered { frame });
            }
            Arbitration::Collision(hosts) => {
                self.stats.collisions += 1;
                self.trace_push(TraceEvent::Collision {
                    stations: hosts.clone(),
                });
                let eth = self.params.ethernet.clone();
                // The medium is garbage for one slot (jam).
                let jam_end = now + eth.slot_time;
                {
                    let Fabric::Hub(hub) = &mut self.fabric else {
                        unreachable!();
                    };
                    hub.busy_until = jam_end;
                }
                for host in hosts {
                    let nic = &mut self.hosts[host.index()].nic;
                    nic.attempts += 1;
                    if nic.attempts >= eth.max_attempts {
                        // Excessive collisions: drop the frame.
                        nic.pop_head();
                        self.stats.excessive_collision_drops += 1;
                        if self.hosts[host.index()].nic.head().is_some() {
                            self.queue.schedule(jam_end, Event::NicRetry { host });
                        } else {
                            self.hosts[host.index()].nic.tx_busy = false;
                        }
                        continue;
                    }
                    let exp = nic.attempts.min(eth.max_backoff_exp);
                    let slots = self.rng.next_below(1u64 << exp);
                    let retry_at = jam_end + eth.slot_time * slots;
                    self.queue.schedule(retry_at, Event::NicRetry { host });
                }
            }
        }
    }

    fn hub_frame_delivered(&mut self, frame: Frame) {
        let src = frame.src;
        let lost = self.params.frame_loss_prob > 0.0 && {
            let p = self.params.frame_loss_prob;
            self.rng.coin(p)
        };
        if lost {
            self.stats.injected_frame_losses += 1;
        } else {
            let n = self.hosts.len();
            for i in 0..n {
                let host = HostId(i as u32);
                if host == src {
                    continue;
                }
                let accepted = frame.accepted_by(host, |g| self.hosts[i].nic.is_member(g));
                if accepted {
                    self.link_deliver(host, &frame);
                }
            }
        }
        // The sender's NIC contends again if it has more frames.
        let more = self.hosts[src.index()].nic.head().is_some();
        if more {
            let now = self.now;
            let Fabric::Hub(hub) = &mut self.fabric else {
                unreachable!();
            };
            if let Some(fire_at) = hub.request(src, now) {
                self.queue.schedule(fire_at, Event::HubArbitrate);
            }
        } else {
            self.hosts[src.index()].nic.tx_busy = false;
            // Other stations may be waiting on the medium.
            let Fabric::Hub(hub) = &mut self.fabric else {
                unreachable!();
            };
            if hub.has_waiters() {
                let fire_at = hub.busy_until;
                if hub
                    .arbitrate_scheduled_at
                    .map(|t| t > fire_at)
                    .unwrap_or(true)
                {
                    hub.arbitrate_scheduled_at = Some(fire_at);
                    self.queue.schedule(fire_at, Event::HubArbitrate);
                }
            }
        }
    }

    // --- switch fabric ---------------------------------------------------

    /// Begin serializing the next queued frame on a host uplink.
    fn nic_tx_next(&mut self, host: HostId) {
        let Some(frame) = self.hosts[host.index()].nic.pop_head() else {
            self.hosts[host.index()].nic.tx_busy = false;
            return;
        };
        self.hosts[host.index()].nic.tx_busy = true;
        let eth = &self.params.ethernet;
        let wire = eth.frame_wire_time(frame.mac_payload);
        let wire_bytes = (eth.preamble_bytes
            + eth.mac_header_bytes
            + frame.mac_payload.max(eth.min_payload_bytes)
            + eth.fcs_bytes) as u64;
        let class = frame_class(&frame);
        // Cut-through switches start forwarding once the header is in;
        // store-and-forward waits for the whole frame.
        let ingress_after = match &self.params.fabric {
            FabricKind::Switch(sp) => match sp.mode {
                crate::params::SwitchMode::StoreAndForward => wire,
                crate::params::SwitchMode::CutThrough { header_bytes } => {
                    eth.byte_time(u64::from((eth.preamble_bytes + header_bytes).min(
                        eth.preamble_bytes
                            + eth.mac_header_bytes
                            + frame.mac_payload.max(eth.min_payload_bytes)
                            + eth.fcs_bytes,
                    )))
                }
            },
            FabricKind::Hub => wire,
        };
        let ingress_at = self.now + ingress_after + eth.prop_delay;
        let next_at = self.now + wire + eth.ifg_time();
        self.stats
            .record_frame_sent(host, frame.mac_payload, wire_bytes, class);
        self.trace_push(TraceEvent::TxStart {
            src: host,
            frame: frame.id,
            bytes: frame.mac_payload,
        });
        self.queue.schedule(
            ingress_at,
            Event::SwitchIngress {
                frame,
                in_port: SwitchPort(host.0),
            },
        );
        self.queue.schedule(next_at, Event::NicTxNext { host });
    }

    fn switch_ingress(&mut self, frame: Frame, in_port: SwitchPort) {
        let latency = match &self.params.fabric {
            FabricKind::Switch(sp) => sp.forwarding_latency,
            FabricKind::Hub => unreachable!("switch event on hub fabric"),
        };
        let Fabric::Switch(sw) = &mut self.fabric else {
            unreachable!();
        };
        sw.learn(frame.src, in_port);
        match &frame.payload {
            FramePayload::IgmpJoin { group } => {
                // Snooped and consumed by the managed switch.
                sw.snoop_join(*group, in_port);
            }
            FramePayload::IgmpLeave { group } => {
                sw.snoop_leave(*group, in_port);
            }
            FramePayload::Fragment { .. } => {
                let at = self.now + latency;
                self.queue
                    .schedule(at, Event::SwitchForward { frame, in_port });
            }
        }
    }

    fn switch_forward(&mut self, frame: Frame, in_port: SwitchPort) {
        let Fabric::Switch(sw) = &mut self.fabric else {
            unreachable!();
        };
        let targets = sw.forward_set(&frame, in_port).ports;
        for port in targets {
            let Fabric::Switch(sw) = &mut self.fabric else {
                unreachable!();
            };
            match sw.enqueue(port, frame.clone()) {
                Ok(true) => self.port_tx_next(port),
                Ok(false) => {}
                Err(()) => self.stats.switch_buffer_drops += 1,
            }
        }
    }

    /// Begin serializing the next queued frame on a switch output port.
    fn port_tx_next(&mut self, port: SwitchPort) {
        let Fabric::Switch(sw) = &mut self.fabric else {
            unreachable!();
        };
        let Some(frame) = sw.dequeue(port) else {
            sw.port_mut(port).tx_busy = false;
            return;
        };
        sw.port_mut(port).tx_busy = true;
        let eth = &self.params.ethernet;
        let wire = eth.frame_wire_time(frame.mac_payload);
        let delivered_at = self.now + wire + eth.prop_delay;
        let next_at = self.now + wire + eth.ifg_time();
        self.queue
            .schedule(delivered_at, Event::PortDelivered { frame, port });
        self.queue.schedule(next_at, Event::PortTxNext { port });
    }

    fn port_delivered(&mut self, frame: Frame, port: SwitchPort) {
        let host = HostId(port.0);
        if self.params.frame_loss_prob > 0.0 {
            let p = self.params.frame_loss_prob;
            if self.rng.coin(p) {
                self.stats.injected_frame_losses += 1;
                return;
            }
        }
        let accepted = frame.accepted_by(host, |g| self.hosts[host.index()].nic.is_member(g));
        if accepted {
            self.link_deliver(host, &frame);
        }
    }

    // --- reception -------------------------------------------------------

    /// Last hop of a frame onto `host`'s link: roll the injected-fault
    /// dice (partition, drop, reorder, duplicate — in that order), then
    /// deliver — late, when the link carries a heterogeneous extra delay
    /// (applied after the dice with no RNG draw of its own, so enabling
    /// it never perturbs which frames the probabilistic knobs hit).
    /// Inert fault params take the zero-draw fast path, so fault-free
    /// runs are byte-identical to pre-fault-injection ones.
    fn link_deliver(&mut self, host: HostId, frame: &Frame) {
        if self.params.faults.is_inert() {
            self.receive_frame(host, frame);
            return;
        }
        let now = self.now;
        let partitioned = self
            .params
            .faults
            .partition
            .as_ref()
            .is_some_and(|p| p.active_at(now) && p.separates(frame.src, host));
        if partitioned {
            self.stats.partition_drops += 1;
            self.stats.link_mut(host).partition_drops += 1;
            self.trace_push(TraceEvent::Drop {
                host,
                reason: "partition",
            });
            return;
        }
        let drop_p = self.params.faults.drop_prob_for(host);
        if drop_p > 0.0 && self.fault_rng.coin(drop_p) {
            self.stats.injected_frame_losses += 1;
            self.stats.link_mut(host).injected_drops += 1;
            self.trace_push(TraceEvent::Drop {
                host,
                reason: "injected loss",
            });
            return;
        }
        let reorder_p = self.params.faults.reorder_prob;
        if reorder_p > 0.0 && self.fault_rng.coin(reorder_p) {
            let max = self.params.faults.reorder_max_delay.as_nanos().max(1);
            let delay = SimDuration::from_nanos(self.fault_rng.range_inclusive(1, max));
            self.stats.injected_reorders += 1;
            self.stats.link_mut(host).injected_reorders += 1;
            self.queue.schedule(
                now + delay,
                Event::LinkRedeliver {
                    host,
                    frame: frame.clone(),
                },
            );
            return;
        }
        let dup_p = self.params.faults.dup_prob;
        if dup_p > 0.0 && self.fault_rng.coin(dup_p) {
            self.stats.injected_duplicates += 1;
            self.stats.link_mut(host).injected_dups += 1;
            let slot = self.params.ethernet.frame_slot(frame.mac_payload);
            self.queue.schedule(
                now + slot,
                Event::LinkRedeliver {
                    host,
                    frame: frame.clone(),
                },
            );
        }
        let extra = self.params.faults.extra_delay_for(host);
        if extra.as_nanos() > 0 {
            self.stats.link_delayed_frames += 1;
            self.stats.link_mut(host).delayed_frames += 1;
            self.queue.schedule(
                now + extra,
                Event::LinkRedeliver {
                    host,
                    frame: frame.clone(),
                },
            );
            return;
        }
        self.receive_frame(host, frame);
    }

    fn receive_frame(&mut self, host: HostId, frame: &Frame) {
        self.stats.link_mut(host).frames_delivered += 1;
        self.trace_push(TraceEvent::Delivered {
            dst: host,
            frame: frame.id,
        });
        if let FramePayload::Fragment {
            datagram,
            index,
            count,
        } = &frame.payload
        {
            let complete = self.hosts[host.index()].receive_fragment(datagram, *index, *count);
            if let Some(dg) = complete {
                self.deliver_datagram(host, dg);
            }
        }
        // IGMP frames are consumed by the switch; stations ignore them.
    }

    fn deliver_datagram(&mut self, host: HostId, dg: Arc<Datagram>) {
        let now = self.now;
        match self.hosts[host.index()].deliver(dg, now) {
            Delivery::Delivered {
                socket,
                had_posted_recv,
            } => {
                self.stats.datagrams_delivered += 1;
                if had_posted_recv {
                    self.completions
                        .push(Completion::RecvReady { host, socket });
                }
            }
            Delivery::Dropped(DeliveryFailure::BufferOverflow) => {
                self.stats.rx_buffer_drops += 1;
                self.trace_push(TraceEvent::Drop {
                    host,
                    reason: "rx buffer overflow",
                });
            }
            Delivery::Dropped(DeliveryFailure::NoPostedReceive) => {
                self.stats.unposted_recv_drops += 1;
                self.trace_push(TraceEvent::Drop {
                    host,
                    reason: "no posted receive (strict multicast)",
                });
            }
            Delivery::Dropped(DeliveryFailure::NoMatchingSocket) => {
                // Silently ignored, like a real host with no listener.
            }
        }
    }
}
