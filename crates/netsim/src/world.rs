//! The simulated network world: hosts + fabric + execution engines.
//!
//! [`World`] owns every piece of simulated state. It knows nothing about
//! threads or MPI ranks — the co-sim driver in [`crate::cluster`] injects
//! sends/receives at chosen virtual times and consumes the
//! [`Completion`]s the world reports back.
//!
//! Since PR 7 the world is a facade over two interchangeable engines
//! (selected by [`RunMode`]; the full model is in `docs/SIMULATOR.md`):
//!
//! * the **event-loop engine** (`EventEngine`, this file): one global
//!   time-ordered queue, advanced one event at a time — the original,
//!   byte-stable reference engine;
//! * the **frame engine** ([`crate::parallel`]): a fixed frame clock and
//!   a worker pool claiming per-host shards through an atomic cursor,
//!   deterministic at any worker count.
//!
//! Every run-loop entry point (`step`, `run_until_completion`,
//! [`World::run_parallel`]) goes through the single `advance_once` seam,
//! so experiment code cannot drift between modes.
//!
//! Fault injection hooks in at the last hop: every frame that survives
//! the fabric passes through a per-link dice roll
//! (hold/partition from the topology script, drop, reorder, duplicate —
//! see [`crate::params::FaultParams`]) before reaching the host stack.
//! The draws come from a dedicated RNG stream, so a lossless
//! configuration is byte-identical to one with fault injection compiled
//! in but off.

use std::sync::Arc;

use crate::event::{Event, EventQueue};
use crate::frame::{fragment_datagram, Datagram, Frame, FramePayload, SharedPayload};
use crate::host::{Delivery, DeliveryFailure, HostStack};
use crate::hub::{Arbitration, Hub};
use crate::ids::{DatagramDst, GroupId, HostId, SocketId, SwitchPort, UdpPort};
use crate::parallel::ParEngine;
use crate::params::{FabricKind, NetParams};
use crate::rng::SplitMix64;
use crate::stats::NetStats;
use crate::switch::Switch;
use crate::time::{SimDuration, SimTime};
use crate::topology::TopoCursor;
use crate::trace::{Trace, TraceEvent};

/// Something the driver has been waiting on finished.
#[derive(Debug)]
pub enum Completion {
    /// A posted receive can now complete: a datagram is buffered.
    RecvReady {
        /// Receiving host.
        host: HostId,
        /// Receiving socket.
        socket: SocketId,
        /// Event time at which the receive became ready. Under the
        /// event-loop engine this equals the world clock when the
        /// completion is returned; the frame engine returns whole frames,
        /// so the world clock may already be at the frame boundary.
        at: SimTime,
    },
    /// A timer fired (receive timeout or sleep).
    TimerFired {
        /// Owning host.
        host: HostId,
        /// Guarded socket for receive timeouts.
        socket: Option<SocketId>,
        /// The token the timer was scheduled with.
        token: u64,
        /// Event time at which the timer fired (see
        /// [`Completion::RecvReady::at`]).
        at: SimTime,
    },
}

impl Completion {
    /// The event time the completion happened at.
    pub fn at(&self) -> SimTime {
        match self {
            Completion::RecvReady { at, .. } | Completion::TimerFired { at, .. } => *at,
        }
    }

    /// The host the completion belongs to.
    pub fn host(&self) -> HostId {
        match self {
            Completion::RecvReady { host, .. } | Completion::TimerFired { host, .. } => *host,
        }
    }
}

/// Result of advancing the world.
#[derive(Debug)]
pub enum StepOutcome {
    /// Events were processed up to the returned time; any completions that
    /// became ready are included (possibly none).
    Advanced {
        /// New current time.
        now: SimTime,
        /// Ready completions.
        completions: Vec<Completion>,
    },
    /// No events pending — the network is silent.
    Quiescent,
}

/// Which execution engine advances the world (see the module docs and
/// `docs/SIMULATOR.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// The sequential event-loop engine (the default; byte-stable
    /// reference behaviour).
    EventLoop,
    /// The frame-based parallel engine with this many workers. `workers
    /// == 1` still exercises the frame clock and merge path on the
    /// calling thread — the baseline the determinism tests compare
    /// against. Requires the switch fabric (the hub's single collision
    /// domain is inherently sequential; construction falls back to
    /// [`RunMode::EventLoop`] on a hub).
    Frames {
        /// Worker count (>= 1), including the calling thread.
        workers: usize,
    },
}

/// Statistics class of a frame.
pub(crate) fn frame_class(frame: &Frame) -> crate::stats::FrameClass {
    match &frame.payload {
        FramePayload::Fragment { datagram, .. } => {
            if datagram.kernel {
                crate::stats::FrameClass::KernelAck
            } else {
                crate::stats::FrameClass::Data
            }
        }
        _ => crate::stats::FrameClass::Control,
    }
}

/// The fabric connecting hosts.
enum Fabric {
    Hub(Hub),
    Switch(Switch),
}

/// Salt decorrelating the fault-injection RNG stream from the
/// backoff/skew streams, so enabling faults never perturbs the timing of
/// surviving frames.
pub(crate) const FAULT_RNG_SALT: u64 = 0xFA17_ED11_FA17_ED11;

/// The state an [`EventEngine`] hands over when converting to the frame
/// engine (queue must be drained first — conversion happens at setup
/// time or between quiescent phases).
pub(crate) struct EngineParts {
    pub n: usize,
    pub hosts: Vec<HostStack>,
    pub switch: Switch,
    pub params: NetParams,
    pub stats: NetStats,
    pub seed: u64,
    pub now: SimTime,
    pub next_datagram_id: u64,
    pub trace_capacity: Option<usize>,
}

/// The simulated network.
pub struct World {
    engine: Engine,
}

enum Engine {
    Event(Box<EventEngine>),
    Par(Box<ParEngine>),
}

impl World {
    /// Build a world of `n` hosts with the given parameters and RNG seed,
    /// advanced by the default event-loop engine.
    pub fn new(n: usize, params: NetParams, seed: u64) -> Self {
        Self::with_mode(n, params, seed, RunMode::EventLoop)
    }

    /// Build a world advanced by the chosen [`RunMode`]. A
    /// [`RunMode::Frames`] request on the hub fabric (or with zero
    /// forwarding latency, which leaves the frame clock no lookahead)
    /// falls back to the event-loop engine.
    pub fn with_mode(n: usize, params: NetParams, seed: u64, mode: RunMode) -> Self {
        let engine = EventEngine::new(n, params, seed);
        let mut world = World {
            engine: Engine::Event(Box::new(engine)),
        };
        if let RunMode::Frames { workers } = mode {
            world.convert_to_parallel(workers);
        }
        world
    }

    /// Switch to the frame-based parallel engine with `workers` workers.
    ///
    /// Only valid while no events are pending (setup time, or after the
    /// world went quiescent); panics otherwise — convert before traffic,
    /// not mid-flight. A no-op when the fabric cannot be parallelized
    /// (hub, or zero forwarding latency) or the world already runs the
    /// frame engine with the same worker count.
    pub fn convert_to_parallel(&mut self, workers: usize) {
        assert!(workers >= 1, "need at least one worker");
        match &mut self.engine {
            Engine::Par(p) => {
                assert_eq!(
                    p.workers(),
                    workers,
                    "worker count is fixed for the lifetime of a world"
                );
            }
            Engine::Event(e) => {
                let parallelizable = match &e.params.fabric {
                    FabricKind::Hub => false,
                    FabricKind::Switch(sp) => sp.forwarding_latency > SimDuration::ZERO,
                };
                if !parallelizable {
                    return;
                }
                // The construction-time TopologyWake events are the one
                // thing legitimately in the queue here: discard them (the
                // frame engine re-schedules its own per-shard wakes).
                // Anything else means traffic is in flight.
                while let Some((_, event)) = e.queue.pop() {
                    assert!(
                        matches!(event, Event::TopologyWake),
                        "convert_to_parallel requires a drained event queue \
                         (convert at setup time, before injecting traffic)"
                    );
                }
                let placeholder = EventEngine::new(0, e.params.clone(), 0);
                let engine = std::mem::replace(e.as_mut(), placeholder);
                self.engine = Engine::Par(Box::new(ParEngine::new(engine.into_parts(), workers)));
            }
        }
    }

    /// True when the frame-based parallel engine is active.
    pub fn is_parallel(&self) -> bool {
        matches!(self.engine, Engine::Par(_))
    }

    /// Enable event tracing with a bounded ring buffer (debugging and
    /// fine-grained model validation; off by default).
    pub fn enable_trace(&mut self, capacity: usize) {
        match &mut self.engine {
            Engine::Event(e) => e.enable_trace(capacity),
            Engine::Par(p) => p.enable_trace(capacity),
        }
    }

    /// The trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        match &self.engine {
            Engine::Event(e) => e.trace.as_ref(),
            Engine::Par(p) => p.trace(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        match &self.engine {
            Engine::Event(e) => e.now,
            Engine::Par(p) => p.now(),
        }
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        match &self.engine {
            Engine::Event(e) => e.hosts.len(),
            Engine::Par(p) => p.host_count(),
        }
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &NetStats {
        match &self.engine {
            Engine::Event(e) => &e.stats,
            Engine::Par(p) => p.stats(),
        }
    }

    /// Mutable statistics (e.g. to reset after warm-up).
    pub fn stats_mut(&mut self) -> &mut NetStats {
        match &mut self.engine {
            Engine::Event(e) => &mut e.stats,
            Engine::Par(p) => p.stats_mut(),
        }
    }

    /// Model parameters.
    pub fn params(&self) -> &NetParams {
        match &self.engine {
            Engine::Event(e) => &e.params,
            Engine::Par(p) => p.params(),
        }
    }

    /// Access a host (tests/driver).
    pub fn host(&self, h: HostId) -> &HostStack {
        match &self.engine {
            Engine::Event(e) => &e.hosts[h.index()],
            Engine::Par(p) => p.host(h),
        }
    }

    /// Mutable access to a host (driver).
    pub fn host_mut(&mut self, h: HostId) -> &mut HostStack {
        match &mut self.engine {
            Engine::Event(e) => &mut e.hosts[h.index()],
            Engine::Par(p) => p.host_mut(h),
        }
    }

    /// Bind a UDP socket on `host`.
    pub fn bind(&mut self, host: HostId, port: UdpPort) -> SocketId {
        match &mut self.engine {
            Engine::Event(e) => e.hosts[host.index()].bind(port),
            Engine::Par(p) => p.bind(host, port),
        }
    }

    /// Setup-time multicast join: updates the host filter *and* the switch
    /// membership table instantly, without IGMP traffic. Models groups
    /// joined before the timed region, as MPI process groups are.
    pub fn join_group_quiet(&mut self, host: HostId, socket: SocketId, group: GroupId) {
        match &mut self.engine {
            Engine::Event(e) => e.join_group_quiet(host, socket, group),
            Engine::Par(p) => p.join_group_quiet(host, socket, group),
        }
    }

    /// Setup-time leave (inverse of [`World::join_group_quiet`]).
    pub fn leave_group_quiet(&mut self, host: HostId, socket: SocketId, group: GroupId) {
        match &mut self.engine {
            Engine::Event(e) => e.leave_group_quiet(host, socket, group),
            Engine::Par(p) => p.leave_group_quiet(host, socket, group),
        }
    }

    /// Runtime multicast join: joins locally and emits an IGMP membership
    /// report frame on the wire at time `at` so a managed switch can snoop.
    pub fn join_group_igmp(&mut self, host: HostId, socket: SocketId, group: GroupId, at: SimTime) {
        match &mut self.engine {
            Engine::Event(e) => e.join_group_igmp(host, socket, group, at),
            Engine::Par(p) => p.join_group_igmp(host, socket, group, at),
        }
    }

    /// Inject a datagram send: the host stack finishes send-side processing
    /// at `at` (the driver has already charged `o_send` + copy), after which
    /// fragments head to the NIC. Under the frame engine `at` is clamped
    /// forward to the current frame boundary (see `docs/SIMULATOR.md`).
    #[allow(clippy::too_many_arguments)]
    pub fn send_datagram(
        &mut self,
        host: HostId,
        src_port: UdpPort,
        dst: DatagramDst,
        dst_port: UdpPort,
        payload: SharedPayload,
        at: SimTime,
        multicast_loopback: bool,
        kernel: bool,
    ) -> u64 {
        match &mut self.engine {
            Engine::Event(e) => e.send_datagram(
                host,
                src_port,
                dst,
                dst_port,
                payload,
                at,
                multicast_loopback,
                kernel,
            ),
            Engine::Par(p) => p.send_datagram(
                host,
                src_port,
                dst,
                dst_port,
                payload,
                at,
                multicast_loopback,
                kernel,
            ),
        }
    }

    /// Pop a buffered datagram, if any, without posting a receive.
    pub fn try_pop_buffered(
        &mut self,
        host: HostId,
        socket: SocketId,
    ) -> Option<(SimTime, Arc<Datagram>)> {
        self.host_mut(host).socket_mut(socket).pop()
    }

    /// Schedule the posting of a blocking receive at virtual time `at` (the
    /// rank's local clock when it called `recv`). Until that instant the
    /// socket counts as *not ready* — under the strict posted-receive model
    /// a datagram delivered earlier is lost, exactly the paper's hazard.
    pub fn schedule_post_recv(&mut self, host: HostId, socket: SocketId, at: SimTime) {
        match &mut self.engine {
            Engine::Event(e) => e.queue.schedule(at, Event::PostRecv { host, socket }),
            Engine::Par(p) => p.schedule_post_recv(host, socket, at),
        }
    }

    /// Take the datagram that satisfied a [`Completion::RecvReady`] and
    /// clear the pending-receive flag.
    pub fn take_recv(
        &mut self,
        host: HostId,
        socket: SocketId,
    ) -> Option<(SimTime, Arc<Datagram>)> {
        let sock = self.host_mut(host).socket_mut(socket);
        sock.recv_posted = false;
        sock.pop()
    }

    /// Cancel a pending receive (timeout path).
    pub fn cancel_recv(&mut self, host: HostId, socket: SocketId) {
        self.host_mut(host).socket_mut(socket).recv_posted = false;
    }

    /// Schedule a timer on `host` that fires at `at` with `token`.
    pub fn schedule_timer(
        &mut self,
        host: HostId,
        socket: Option<SocketId>,
        token: u64,
        at: SimTime,
    ) {
        match &mut self.engine {
            Engine::Event(e) => e.queue.schedule(
                at,
                Event::Timer {
                    host,
                    socket,
                    token,
                },
            ),
            Engine::Par(p) => p.schedule_timer(host, socket, token, at),
        }
    }

    /// Lazily cancel a timer previously scheduled on `host`. The pending
    /// event stays queued and is swallowed when it fires.
    pub fn cancel_timer(&mut self, host: HostId, token: u64) {
        self.host_mut(host).cancel_timer(token);
    }

    // ------------------------------------------------------------------
    // The Runner seam: every run loop goes through `advance_once`.
    // ------------------------------------------------------------------

    /// Advance the engine by its natural unit: one event (event-loop
    /// engine) or one non-empty frame (frame engine).
    pub fn step(&mut self) -> StepOutcome {
        match &mut self.engine {
            Engine::Event(e) => e.advance_once(),
            Engine::Par(p) => p.advance_once(),
        }
    }

    /// Advance until at least one completion is ready (returned) or
    /// the world drains ([`StepOutcome::Quiescent`]).
    pub fn run_until_completion(&mut self) -> StepOutcome {
        loop {
            match self.step() {
                StepOutcome::Advanced { completions, .. } if completions.is_empty() => continue,
                outcome => return outcome,
            }
        }
    }

    /// Run the world to quiescence on the frame-based parallel engine
    /// with `workers` workers, converting from the event-loop engine
    /// first if needed (which requires a drained queue — convert at
    /// setup time). Returns the final outcome (always
    /// [`StepOutcome::Quiescent`]; completions surface through
    /// [`World::run_until_completion`] as usual before that).
    pub fn run_parallel(&mut self, workers: usize) -> StepOutcome {
        self.convert_to_parallel(workers);
        loop {
            if let StepOutcome::Quiescent = self.step() {
                return StepOutcome::Quiescent;
            }
        }
    }
}

// ----------------------------------------------------------------------
// The sequential event-loop engine.
// ----------------------------------------------------------------------

/// The original single-queue discrete-event engine (see module docs).
pub(crate) struct EventEngine {
    now: SimTime,
    queue: EventQueue,
    hosts: Vec<HostStack>,
    fabric: Fabric,
    params: NetParams,
    stats: NetStats,
    rng: SplitMix64,
    fault_rng: SplitMix64,
    seed: u64,
    next_datagram_id: u64,
    next_frame_id: u64,
    topo: TopoCursor,
    /// Frames parked by a topology hold, in arrival order: (src, dst, frame).
    held: Vec<(HostId, HostId, Frame)>,
    completions: Vec<Completion>,
    trace: Option<Trace>,
    trace_capacity: Option<usize>,
}

impl EventEngine {
    fn new(n: usize, params: NetParams, seed: u64) -> Self {
        let hosts = (0..n)
            .map(|i| {
                let mut h = HostStack::new(
                    HostId(i as u32),
                    params.host.rx_buffer_bytes,
                    params.host.strict_posted_recv,
                );
                if params.track_payload_crossings {
                    h.set_track_crossings(true);
                }
                h
            })
            .collect();
        let fabric = match &params.fabric {
            FabricKind::Hub => Fabric::Hub(Hub::new()),
            FabricKind::Switch(sp) => {
                let mut sw = Switch::new(n, sp.port_buffer_bytes, sp.flood_multicast);
                sw.set_unicast_only(sp.unicast_only);
                // Static star topology: port i <-> host i. Pre-populate the
                // learning table (a warm ARP/MAC cache) so the first unicast
                // of a run is not flooded to every port.
                for i in 0..n as u32 {
                    sw.learn(HostId(i), SwitchPort(i));
                }
                Fabric::Switch(sw)
            }
        };
        let mut queue = EventQueue::new();
        let topo = TopoCursor::new(&params.faults.topology);
        // A wake at every scripted op time guarantees holds release (and
        // partitions heal) even when no traffic touches the link.
        for at in params.faults.topology.op_times() {
            queue.schedule(at, Event::TopologyWake);
        }
        EventEngine {
            now: SimTime::ZERO,
            queue,
            hosts,
            fabric,
            params,
            stats: NetStats::new(n),
            rng: SplitMix64::new(seed),
            fault_rng: SplitMix64::new(seed ^ FAULT_RNG_SALT),
            seed,
            next_datagram_id: 0,
            next_frame_id: 0,
            topo,
            held: Vec::new(),
            completions: Vec::new(),
            trace: None,
            trace_capacity: None,
        }
    }

    /// Tear down into the parts the frame engine is built from. The
    /// caller (the facade) has already checked the queue is empty and
    /// the fabric is a switch.
    fn into_parts(self) -> EngineParts {
        debug_assert!(self.queue.is_empty());
        assert!(
            self.held.is_empty(),
            "convert_to_parallel would lose frames parked by a topology \
             hold (convert before the script starts holding links)"
        );
        let Fabric::Switch(switch) = self.fabric else {
            unreachable!("parallel conversion is switch-only");
        };
        EngineParts {
            n: self.hosts.len(),
            hosts: self.hosts,
            switch,
            params: self.params,
            stats: self.stats,
            seed: self.seed,
            now: self.now,
            next_datagram_id: self.next_datagram_id,
            trace_capacity: self.trace_capacity,
        }
    }

    fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
        self.trace_capacity = Some(capacity);
    }

    fn trace_push(&mut self, event: TraceEvent) {
        if let Some(t) = &mut self.trace {
            let now = self.now;
            t.push(now, event);
        }
    }

    fn join_group_quiet(&mut self, host: HostId, socket: SocketId, group: GroupId) {
        self.hosts[host.index()].join_group(socket, group);
        if let Fabric::Switch(sw) = &mut self.fabric {
            sw.snoop_join(group, SwitchPort(host.0));
        }
    }

    fn leave_group_quiet(&mut self, host: HostId, socket: SocketId, group: GroupId) {
        let h = &mut self.hosts[host.index()];
        h.leave_group(socket, group);
        let still_member = h.nic.is_member(group);
        if let (Fabric::Switch(sw), false) = (&mut self.fabric, still_member) {
            sw.snoop_leave(group, SwitchPort(host.0));
        }
    }

    fn join_group_igmp(&mut self, host: HostId, socket: SocketId, group: GroupId, at: SimTime) {
        self.hosts[host.index()].join_group(socket, group);
        let frame = Frame {
            id: self.fresh_frame_id(),
            src: host,
            dst: crate::frame::FrameDst::Broadcast,
            mac_payload: 46,
            payload: FramePayload::IgmpJoin { group },
        };
        self.enqueue_frames_at(host, vec![frame], at);
    }

    #[allow(clippy::too_many_arguments)]
    fn send_datagram(
        &mut self,
        host: HostId,
        src_port: UdpPort,
        dst: DatagramDst,
        dst_port: UdpPort,
        payload: SharedPayload,
        at: SimTime,
        multicast_loopback: bool,
        kernel: bool,
    ) -> u64 {
        let id = self.next_datagram_id;
        self.next_datagram_id += 1;
        let datagram = Arc::new(Datagram {
            id,
            src_host: host,
            src_port,
            dst,
            dst_port,
            payload,
            kernel,
        });
        if kernel {
            self.stats.kernel_datagrams_sent += 1;
        } else {
            self.stats.datagrams_sent += 1;
            match dst {
                DatagramDst::Multicast(_) => self.stats.mcast_datagrams_sent += 1,
                DatagramDst::Unicast(_) => self.stats.unicast_datagrams_sent += 1,
            }
        }
        match dst {
            DatagramDst::Unicast(d) if d == host => {
                // Self-send never touches the wire.
                self.queue
                    .schedule(at, Event::LoopbackDelivery { host, datagram });
            }
            _ => {
                if multicast_loopback && matches!(dst, DatagramDst::Multicast(_)) {
                    self.queue.schedule(
                        at,
                        Event::LoopbackDelivery {
                            host,
                            datagram: Arc::clone(&datagram),
                        },
                    );
                }
                self.queue
                    .schedule(at, Event::DatagramReady { host, datagram });
            }
        }
        id
    }

    /// Process exactly one event (this engine's `advance_once`).
    fn advance_once(&mut self) -> StepOutcome {
        let Some((at, event)) = self.queue.pop() else {
            return StepOutcome::Quiescent;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.handle(event);
        StepOutcome::Advanced {
            now: self.now,
            completions: std::mem::take(&mut self.completions),
        }
    }

    fn fresh_frame_id(&mut self) -> u64 {
        let id = self.next_frame_id;
        self.next_frame_id += 1;
        id
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::DatagramReady { host, datagram } => {
                let mut next_id = self.next_frame_id;
                let frames = fragment_datagram(
                    datagram,
                    &self.params.ip,
                    self.params.ethernet.mtu_bytes,
                    || {
                        let id = next_id;
                        next_id += 1;
                        id
                    },
                );
                self.next_frame_id = next_id;
                let at = self.now;
                self.enqueue_frames_at(host, frames, at);
            }
            Event::LoopbackDelivery { host, datagram } => {
                self.deliver_datagram(host, datagram);
            }
            Event::HubArbitrate => self.hub_arbitrate(),
            Event::HubFrameDelivered { frame } => self.hub_frame_delivered(frame),
            Event::NicRetry { host } => {
                let now = self.now;
                let Fabric::Hub(hub) = &mut self.fabric else {
                    unreachable!("NicRetry only occurs on the hub fabric");
                };
                if let Some(fire_at) = hub.request(host, now) {
                    self.queue.schedule(fire_at, Event::HubArbitrate);
                }
            }
            Event::NicTxNext { host } => self.nic_tx_next(host),
            Event::SwitchIngress { frame, in_port } => self.switch_ingress(frame, in_port),
            Event::SwitchForward { frame, in_port } => self.switch_forward(frame, in_port),
            Event::PortEnqueue { frame, port } => self.port_enqueue(frame, port),
            Event::PortDelivered { frame, port } => self.port_delivered(frame, port),
            Event::PortTxNext { port } => self.port_tx_next(port),
            Event::LinkRedeliver { host, frame } => self.receive_frame(host, &frame),
            Event::TopologyWake => {
                let now = self.now;
                let released = self.topo.advance_to(now);
                self.apply_releases(released);
            }
            Event::PostRecv { host, socket } => {
                let sock = self.hosts[host.index()].socket_mut(socket);
                sock.recv_posted = true;
                if sock.buffered() > 0 {
                    let at = self.now;
                    self.completions
                        .push(Completion::RecvReady { host, socket, at });
                }
            }
            Event::Timer {
                host,
                socket,
                token,
            } => {
                if !self.hosts[host.index()].take_timer_cancellation(token) {
                    let at = self.now;
                    self.completions.push(Completion::TimerFired {
                        host,
                        socket,
                        token,
                        at,
                    });
                }
            }
        }
    }

    /// Re-deliver frames parked under the just-released holds, in arrival
    /// order (no further fault rolls — the hold already decided their fate).
    fn apply_releases(&mut self, released: Vec<(HostId, HostId)>) {
        for (src, dst) in released {
            let mut i = 0;
            while i < self.held.len() {
                if self.held[i].0 == src && self.held[i].1 == dst {
                    let (_, _, frame) = self.held.remove(i);
                    self.stats.frames_released += 1;
                    self.receive_frame(dst, &frame);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Hand frames to a host NIC at time `at`, kicking transmission if idle.
    fn enqueue_frames_at(&mut self, host: HostId, frames: Vec<Frame>, at: SimTime) {
        debug_assert!(at >= self.now);
        let nic = &mut self.hosts[host.index()].nic;
        let mut kick = false;
        for f in frames {
            kick |= nic.enqueue(f);
        }
        if !kick {
            return;
        }
        nic.tx_busy = true;
        match &mut self.fabric {
            Fabric::Hub(hub) => {
                if let Some(fire_at) = hub.request(host, at) {
                    self.queue.schedule(fire_at, Event::HubArbitrate);
                }
            }
            Fabric::Switch(_) => {
                // Start serializing the head frame onto the uplink at `at`.
                self.queue.schedule(at, Event::NicTxNext { host });
            }
        }
    }

    // --- hub fabric -----------------------------------------------------

    fn hub_arbitrate(&mut self) {
        let now = self.now;
        let Fabric::Hub(hub) = &mut self.fabric else {
            unreachable!("HubArbitrate only occurs on the hub fabric");
        };
        match hub.arbitrate(now) {
            Arbitration::Idle => {}
            Arbitration::Winner(host) => {
                let frame = self.hosts[host.index()]
                    .nic
                    .pop_head()
                    .expect("winner must have a queued frame");
                let eth = self.params.ethernet.clone();
                let wire = eth.frame_wire_time(frame.mac_payload);
                let wire_bytes = (eth.preamble_bytes
                    + eth.mac_header_bytes
                    + frame.mac_payload.max(eth.min_payload_bytes)
                    + eth.fcs_bytes) as u64;
                let class = frame_class(&frame);
                self.stats
                    .record_frame_sent(host, frame.mac_payload, wire_bytes, class);
                self.trace_push(TraceEvent::TxStart {
                    src: host,
                    frame: frame.id,
                    bytes: frame.mac_payload,
                });
                let delivered_at = now + wire + eth.prop_delay;
                let Fabric::Hub(hub) = &mut self.fabric else {
                    unreachable!();
                };
                hub.busy_until = now + wire + eth.ifg_time();
                self.queue
                    .schedule(delivered_at, Event::HubFrameDelivered { frame });
            }
            Arbitration::Collision(hosts) => {
                self.stats.collisions += 1;
                self.trace_push(TraceEvent::Collision {
                    stations: hosts.clone(),
                });
                let eth = self.params.ethernet.clone();
                // The medium is garbage for one slot (jam).
                let jam_end = now + eth.slot_time;
                {
                    let Fabric::Hub(hub) = &mut self.fabric else {
                        unreachable!();
                    };
                    hub.busy_until = jam_end;
                }
                for host in hosts {
                    let nic = &mut self.hosts[host.index()].nic;
                    nic.attempts += 1;
                    if nic.attempts >= eth.max_attempts {
                        // Excessive collisions: drop the frame.
                        nic.pop_head();
                        self.stats.excessive_collision_drops += 1;
                        if self.hosts[host.index()].nic.head().is_some() {
                            self.queue.schedule(jam_end, Event::NicRetry { host });
                        } else {
                            self.hosts[host.index()].nic.tx_busy = false;
                        }
                        continue;
                    }
                    let exp = nic.attempts.min(eth.max_backoff_exp);
                    let slots = self.rng.next_below(1u64 << exp);
                    let retry_at = jam_end + eth.slot_time * slots;
                    self.queue.schedule(retry_at, Event::NicRetry { host });
                }
            }
        }
    }

    fn hub_frame_delivered(&mut self, frame: Frame) {
        let src = frame.src;
        let lost = self.params.frame_loss_prob > 0.0 && {
            let p = self.params.frame_loss_prob;
            self.rng.coin(p)
        };
        if lost {
            self.stats.injected_frame_losses += 1;
        } else {
            let n = self.hosts.len();
            for i in 0..n {
                let host = HostId(i as u32);
                if host == src {
                    continue;
                }
                let accepted = frame.accepted_by(host, |g| self.hosts[i].nic.is_member(g));
                if accepted {
                    self.link_deliver(host, &frame);
                }
            }
        }
        // The sender's NIC contends again if it has more frames.
        let more = self.hosts[src.index()].nic.head().is_some();
        if more {
            let now = self.now;
            let Fabric::Hub(hub) = &mut self.fabric else {
                unreachable!();
            };
            if let Some(fire_at) = hub.request(src, now) {
                self.queue.schedule(fire_at, Event::HubArbitrate);
            }
        } else {
            self.hosts[src.index()].nic.tx_busy = false;
            // Other stations may be waiting on the medium.
            let Fabric::Hub(hub) = &mut self.fabric else {
                unreachable!();
            };
            if hub.has_waiters() {
                let fire_at = hub.busy_until;
                if hub
                    .arbitrate_scheduled_at
                    .map(|t| t > fire_at)
                    .unwrap_or(true)
                {
                    hub.arbitrate_scheduled_at = Some(fire_at);
                    self.queue.schedule(fire_at, Event::HubArbitrate);
                }
            }
        }
    }

    // --- switch fabric ---------------------------------------------------

    /// Begin serializing the next queued frame on a host uplink.
    fn nic_tx_next(&mut self, host: HostId) {
        let Some(frame) = self.hosts[host.index()].nic.pop_head() else {
            self.hosts[host.index()].nic.tx_busy = false;
            return;
        };
        self.hosts[host.index()].nic.tx_busy = true;
        let eth = &self.params.ethernet;
        let wire = eth.frame_wire_time(frame.mac_payload);
        let wire_bytes = (eth.preamble_bytes
            + eth.mac_header_bytes
            + frame.mac_payload.max(eth.min_payload_bytes)
            + eth.fcs_bytes) as u64;
        let class = frame_class(&frame);
        // Cut-through switches start forwarding once the header is in;
        // store-and-forward waits for the whole frame.
        let ingress_after = match &self.params.fabric {
            FabricKind::Switch(sp) => match sp.mode {
                crate::params::SwitchMode::StoreAndForward => wire,
                crate::params::SwitchMode::CutThrough { header_bytes } => {
                    eth.byte_time(u64::from((eth.preamble_bytes + header_bytes).min(
                        eth.preamble_bytes
                            + eth.mac_header_bytes
                            + frame.mac_payload.max(eth.min_payload_bytes)
                            + eth.fcs_bytes,
                    )))
                }
            },
            FabricKind::Hub => wire,
        };
        let ingress_at = self.now + ingress_after + eth.prop_delay;
        let next_at = self.now + wire + eth.ifg_time();
        self.stats
            .record_frame_sent(host, frame.mac_payload, wire_bytes, class);
        self.trace_push(TraceEvent::TxStart {
            src: host,
            frame: frame.id,
            bytes: frame.mac_payload,
        });
        self.queue.schedule(
            ingress_at,
            Event::SwitchIngress {
                frame,
                in_port: SwitchPort(host.0),
            },
        );
        self.queue.schedule(next_at, Event::NicTxNext { host });
    }

    fn switch_ingress(&mut self, frame: Frame, in_port: SwitchPort) {
        let latency = match &self.params.fabric {
            FabricKind::Switch(sp) => sp.forwarding_latency,
            FabricKind::Hub => unreachable!("switch event on hub fabric"),
        };
        let Fabric::Switch(sw) = &mut self.fabric else {
            unreachable!();
        };
        sw.learn(frame.src, in_port);
        match &frame.payload {
            FramePayload::IgmpJoin { group } => {
                // Snooped and consumed by the managed switch.
                sw.snoop_join(*group, in_port);
            }
            FramePayload::IgmpLeave { group } => {
                sw.snoop_leave(*group, in_port);
            }
            FramePayload::Fragment { .. } => {
                let at = self.now + latency;
                self.queue
                    .schedule(at, Event::SwitchForward { frame, in_port });
            }
        }
    }

    fn switch_forward(&mut self, frame: Frame, in_port: SwitchPort) {
        let Fabric::Switch(sw) = &mut self.fabric else {
            unreachable!();
        };
        if sw.tables().unicast_only() && matches!(frame.dst, crate::frame::FrameDst::Multicast(_)) {
            self.stats.unicast_only_drops += 1;
            return;
        }
        let targets = sw.forward_set(&frame, in_port).ports;
        for port in targets {
            self.port_enqueue_frame(frame.clone(), port);
        }
    }

    /// Enqueue on a single output port, kicking transmission if idle —
    /// shared by [`Event::SwitchForward`] fan-out and the parallel
    /// engine's [`Event::PortEnqueue`].
    fn port_enqueue_frame(&mut self, frame: Frame, port: SwitchPort) {
        let Fabric::Switch(sw) = &mut self.fabric else {
            unreachable!();
        };
        match sw.enqueue(port, frame) {
            Ok(true) => self.port_tx_next(port),
            Ok(false) => {}
            Err(()) => self.stats.switch_buffer_drops += 1,
        }
    }

    fn port_enqueue(&mut self, frame: Frame, port: SwitchPort) {
        self.port_enqueue_frame(frame, port);
    }

    /// Begin serializing the next queued frame on a switch output port.
    fn port_tx_next(&mut self, port: SwitchPort) {
        let Fabric::Switch(sw) = &mut self.fabric else {
            unreachable!();
        };
        let Some(frame) = sw.dequeue(port) else {
            sw.port_mut(port).tx_busy = false;
            return;
        };
        sw.port_mut(port).tx_busy = true;
        let eth = &self.params.ethernet;
        let wire = eth.frame_wire_time(frame.mac_payload);
        let delivered_at = self.now + wire + eth.prop_delay;
        let next_at = self.now + wire + eth.ifg_time();
        self.queue
            .schedule(delivered_at, Event::PortDelivered { frame, port });
        self.queue.schedule(next_at, Event::PortTxNext { port });
    }

    fn port_delivered(&mut self, frame: Frame, port: SwitchPort) {
        let host = HostId(port.0);
        if self.params.frame_loss_prob > 0.0 {
            let p = self.params.frame_loss_prob;
            if self.rng.coin(p) {
                self.stats.injected_frame_losses += 1;
                return;
            }
        }
        let accepted = frame.accepted_by(host, |g| self.hosts[host.index()].nic.is_member(g));
        if accepted {
            self.link_deliver(host, &frame);
        }
    }

    // --- reception -------------------------------------------------------

    /// Last hop of a frame onto `host`'s link: advance the topology
    /// script, park the frame if the link is held, drop it if a
    /// partition separates the endpoints, then roll the injected-fault
    /// dice (drop, reorder, duplicate — in that order) and deliver —
    /// late, when the link carries a heterogeneous extra delay (applied
    /// after the dice with no RNG draw of its own, so enabling it never
    /// perturbs which frames the probabilistic knobs hit). Inert fault
    /// params take the zero-draw fast path, so fault-free runs are
    /// byte-identical to pre-fault-injection ones.
    fn link_deliver(&mut self, host: HostId, frame: &Frame) {
        if self.params.faults.is_inert() {
            self.receive_frame(host, frame);
            return;
        }
        let now = self.now;
        // Usually a no-op: the TopologyWake scheduled at each op time has
        // the earliest sequence number at that instant, so it advances the
        // cursor before same-time traffic. Kept for robustness.
        let released = self.topo.advance_to(now);
        if !released.is_empty() {
            self.apply_releases(released);
        }
        if self.topo.is_held(frame.src, host) {
            self.stats.frames_held += 1;
            self.held.push((frame.src, host, frame.clone()));
            return;
        }
        if self.topo.separated(frame.src, host) {
            self.stats.partition_drops += 1;
            self.stats.link_mut(host).partition_drops += 1;
            self.trace_push(TraceEvent::Drop {
                host,
                reason: "partition",
            });
            return;
        }
        let drop_p = self.params.faults.drop_prob_for(host);
        if drop_p > 0.0 && self.fault_rng.coin(drop_p) {
            self.stats.injected_frame_losses += 1;
            self.stats.link_mut(host).injected_drops += 1;
            self.trace_push(TraceEvent::Drop {
                host,
                reason: "injected loss",
            });
            return;
        }
        let reorder_p = self.params.faults.reorder_prob;
        if reorder_p > 0.0 && self.fault_rng.coin(reorder_p) {
            let max = self.params.faults.reorder_max_delay.as_nanos().max(1);
            let delay = SimDuration::from_nanos(self.fault_rng.range_inclusive(1, max));
            self.stats.injected_reorders += 1;
            self.stats.link_mut(host).injected_reorders += 1;
            self.queue.schedule(
                now + delay,
                Event::LinkRedeliver {
                    host,
                    frame: frame.clone(),
                },
            );
            return;
        }
        let dup_p = self.params.faults.dup_prob;
        if dup_p > 0.0 && self.fault_rng.coin(dup_p) {
            self.stats.injected_duplicates += 1;
            self.stats.link_mut(host).injected_dups += 1;
            let slot = self.params.ethernet.frame_slot(frame.mac_payload);
            self.queue.schedule(
                now + slot,
                Event::LinkRedeliver {
                    host,
                    frame: frame.clone(),
                },
            );
        }
        let extra = self.params.faults.extra_delay_for(host);
        if extra.as_nanos() > 0 {
            self.stats.link_delayed_frames += 1;
            self.stats.link_mut(host).delayed_frames += 1;
            self.queue.schedule(
                now + extra,
                Event::LinkRedeliver {
                    host,
                    frame: frame.clone(),
                },
            );
            return;
        }
        self.receive_frame(host, frame);
    }

    fn receive_frame(&mut self, host: HostId, frame: &Frame) {
        // Checked at the final hop (not in link_deliver) so in-flight
        // frames already past the dice — reorders, dups, extra-delay
        // redeliveries, released holds — also die with the host.
        if self.topo.is_crashed(host) {
            self.stats.crashed_frames += 1;
            self.trace_push(TraceEvent::Drop {
                host,
                reason: "crashed host",
            });
            return;
        }
        self.stats.link_mut(host).frames_delivered += 1;
        self.trace_push(TraceEvent::Delivered {
            dst: host,
            frame: frame.id,
        });
        if let FramePayload::Fragment {
            datagram,
            index,
            count,
        } = &frame.payload
        {
            let complete = self.hosts[host.index()].receive_fragment(datagram, *index, *count);
            if let Some(dg) = complete {
                if let Some(dup) = self.hosts[host.index()].note_crossing(&dg) {
                    let l = self.stats.link_mut(host);
                    l.data_chunks_delivered += 1;
                    if dup {
                        l.duplicate_data_chunks += 1;
                    }
                }
                self.deliver_datagram(host, dg);
            }
        }
        // IGMP frames are consumed by the switch; stations ignore them.
    }

    fn deliver_datagram(&mut self, host: HostId, dg: Arc<Datagram>) {
        let now = self.now;
        match self.hosts[host.index()].deliver(dg, now) {
            Delivery::Delivered {
                socket,
                had_posted_recv,
            } => {
                self.stats.datagrams_delivered += 1;
                if had_posted_recv {
                    self.completions.push(Completion::RecvReady {
                        host,
                        socket,
                        at: now,
                    });
                }
            }
            Delivery::Dropped(DeliveryFailure::BufferOverflow) => {
                self.stats.rx_buffer_drops += 1;
                self.trace_push(TraceEvent::Drop {
                    host,
                    reason: "rx buffer overflow",
                });
            }
            Delivery::Dropped(DeliveryFailure::NoPostedReceive) => {
                self.stats.unposted_recv_drops += 1;
                self.trace_push(TraceEvent::Drop {
                    host,
                    reason: "no posted receive (strict multicast)",
                });
            }
            Delivery::Dropped(DeliveryFailure::NoMatchingSocket) => {
                // Silently ignored, like a real host with no listener.
            }
        }
    }
}
