//! The discrete-event core: event types and the time-ordered queue.
//!
//! Ordering is `(time, sequence)` where the sequence number is assigned at
//! scheduling time — two events at the same instant fire in the order they
//! were scheduled, which (together with the driver running ranks in rank
//! order) makes whole simulations bit-reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::frame::{Datagram, Frame};
use crate::ids::{HostId, SocketId, SwitchPort};
use crate::time::SimTime;

/// Everything that can happen inside the simulated network.
#[derive(Debug)]
pub enum Event {
    /// Hub: the medium is (about to be) free — pick the next transmitter
    /// among contending NICs, or detect a collision.
    HubArbitrate,
    /// Hub: the last bit of a frame has propagated to every station.
    HubFrameDelivered {
        /// The frame that finished.
        frame: Frame,
    },
    /// Hub: a NIC's collision backoff expired; it contends again.
    NicRetry {
        /// The backing-off station.
        host: HostId,
    },
    /// Switch mode: a NIC finished serializing (frame + IFG) and may start
    /// its next queued frame.
    NicTxNext {
        /// The transmitting station.
        host: HostId,
    },
    /// Switch mode: the last bit of a host's frame arrived at the switch.
    SwitchIngress {
        /// The received frame.
        frame: Frame,
        /// Ingress port.
        in_port: SwitchPort,
    },
    /// Switch: forwarding latency elapsed; enqueue on output port(s).
    SwitchForward {
        /// The frame to forward.
        frame: Frame,
        /// Ingress port (excluded from flooding).
        in_port: SwitchPort,
    },
    /// Switch: enqueue a frame on exactly one output port. The parallel
    /// engine's per-port form of [`Event::SwitchForward`] — forwarding
    /// fans out into one `PortEnqueue` per target so each lands on the
    /// shard that owns the port.
    PortEnqueue {
        /// The frame to enqueue.
        frame: Frame,
        /// The single target port.
        port: SwitchPort,
    },
    /// Switch: the last bit of a frame arrived at the host on `port`.
    PortDelivered {
        /// The delivered frame.
        frame: Frame,
        /// Egress port it was sent from.
        port: SwitchPort,
    },
    /// Switch: an output port finished (frame + IFG) and may dequeue.
    PortTxNext {
        /// The now-idle port.
        port: SwitchPort,
    },
    /// A host's protocol stack finished the send-side processing of a
    /// datagram; hand its fragments to the NIC.
    DatagramReady {
        /// Sending host.
        host: HostId,
        /// The datagram to fragment and transmit.
        datagram: Arc<Datagram>,
    },
    /// Loopback delivery of a multicast datagram to its own sender
    /// (IP_MULTICAST_LOOP semantics) — bypasses the wire.
    LoopbackDelivery {
        /// Receiving (== sending) host.
        host: HostId,
        /// The datagram.
        datagram: Arc<Datagram>,
    },
    /// Fault injection: a duplicated or reordered frame re-enters the
    /// receiving link and is delivered to the host as-is (no further
    /// fault rolls, so the extra delay/copy is bounded).
    LinkRedeliver {
        /// Receiving host.
        host: HostId,
        /// The held-back or duplicated frame.
        frame: Frame,
    },
    /// A rank's blocking receive becomes *posted* at its local virtual
    /// time (relevant for the strict posted-receive loss model).
    PostRecv {
        /// Receiving host.
        host: HostId,
        /// Receiving socket.
        socket: SocketId,
    },
    /// Advance the topology-script cursor (scheduled at every scripted
    /// op time, so held frames are released even on an idle link).
    TopologyWake,
    /// A user timer (receive timeout, sleep) fired.
    Timer {
        /// Owning host.
        host: HostId,
        /// Socket the timer guards (receive timeout), if any.
        socket: Option<SocketId>,
        /// Cancellation token.
        token: u64,
    },
}

struct Queued {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Time-ordered event queue with deterministic tie-breaking.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Queued>,
    next_seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Queued { at, seq, event });
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|q| q.at)
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|q| (q.at, q.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(token: u64) -> Event {
        Event::Timer {
            host: HostId(0),
            socket: None,
            token,
        }
    }

    fn token_of(e: Event) -> u64 {
        match e {
            Event::Timer { token, .. } => token,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), timer(3));
        q.schedule(SimTime::from_nanos(10), timer(1));
        q.schedule(SimTime::from_nanos(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| token_of(e))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, timer(i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| token_of(e))
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(42), timer(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.len(), 1);
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_nanos(42));
        assert!(q.is_empty());
    }
}
