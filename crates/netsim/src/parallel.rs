//! Frame-based parallel execution engine for the simulated world.
//!
//! The event-loop engine in [`crate::world`] advances one global
//! time-ordered queue; every event handler may touch any host, so it is
//! inherently sequential. This module trades that single queue for a
//! **fixed frame clock** and per-host **shards** (the full model and its
//! determinism contract are documented in `docs/SIMULATOR.md`):
//!
//! * The frame width is the switch forwarding latency Δ — the *lookahead*
//!   of the star topology. The only event one host can schedule onto
//!   another host's state is the per-port enqueue after forwarding, which
//!   happens exactly Δ after switch ingress, so an event processed in
//!   frame `f` can only affect other shards in frame `f + 1` or later.
//! * Each frame, a worker pool claims shards through an atomic cursor and
//!   processes each shard's local events with `time < frame_end` in
//!   `(time, local seq)` order, exactly as the event loop would.
//! * Cross-shard effects (port enqueues, IGMP snoops) are buffered
//!   per-worker and tagged `(time, source shard, per-shard sequence)` — a
//!   total order that does not depend on which worker ran what. At the
//!   frame barrier the coordinator scatters port enqueues to per-host
//!   **inboxes** (time-sorted `Vec`s the run loop merges against the
//!   local event queue by front timestamp — O(1) per fan-out target
//!   instead of a heap round-trip) and canonicalizes each touched
//!   inbox's new tail by that key, so the per-destination order is
//!   independent of scatter order and therefore of the worker count.
//!   With a single worker the staging hop is skipped entirely and the
//!   inline worker writes destination inboxes directly; the same tail
//!   sort makes the result byte-equal to the staged path.
//! * Every shard owns a private fault-RNG stream (SplitMix64, forked from
//!   the world seed in host order), its own topology cursor, and its own
//!   parked-frame list, so no random draw or topology decision ever
//!   crosses a shard boundary.
//!
//! The result: for a fixed seed and parameters the simulation is
//! **byte-identical at any worker count** (including `workers = 1`).
//! Relative to the event-loop engine, timing is preserved for the frame
//! data path (the Δ-lookahead argument is exact), but RNG streams and
//! same-instant tie-breaking differ, so cross-engine runs are compared on
//! outputs, not on traces.
//!
//! Shards live in `Racy` cells — `UnsafeCell`s with a phase protocol
//! instead of locks: during a frame each shard is touched only by the
//! worker that claimed it from the cursor, and between frames only the
//! coordinator (which holds `&mut ParEngine`) touches anything. The
//! generation counter / done counter pair establishes the necessary
//! happens-before edges.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::event::{Event, EventQueue};
use crate::frame::{fragment_datagram, Datagram, Frame, FrameDst, FramePayload, SharedPayload};
use crate::host::{Delivery, DeliveryFailure, HostStack};
use crate::ids::{DatagramDst, GroupId, HostId, SocketId, SwitchPort, UdpPort};
use crate::params::{FabricKind, NetParams, SwitchMode};
use crate::rng::SplitMix64;
use crate::stats::{FrameClass, LinkStats, NetStats};
use crate::switch::{OutPort, SwitchTables};
use crate::time::{SimDuration, SimTime};
use crate::topology::TopoCursor;
use crate::trace::{Trace, TraceEvent};
use crate::world::{frame_class, Completion, EngineParts, StepOutcome, FAULT_RNG_SALT};

/// Frame ids for control frames injected from driver context (IGMP) use
/// the top bit so they can never collide with the per-datagram-derived
/// data frame ids (`datagram_id << 16 | fragment`).
const CONTROL_FRAME_ID_BASE: u64 = 1 << 63;

/// Iterations a worker spins on the generation counter before parking on
/// the condvar, and the coordinator spins on the done counter. Frames are
/// short (tens of microseconds of real work), so the next frame usually
/// starts within the spin window; parking is the idle-world fallback.
const SPIN_ITERS: u32 = 10_000;

/// An `UnsafeCell` shared across the worker pool under the phase
/// protocol described in the module docs. All access is `unsafe` and
/// must follow that protocol; the atomics in [`Shared`] provide the
/// happens-before edges between phases.
struct Racy<T>(UnsafeCell<T>);

// Safety: see the module docs. T moves between threads across barriers
// (Send); concurrent access never aliases because each shard slot is
// claimed by exactly one worker per phase and only the coordinator
// touches anything between phases. The claim protocol itself is
// machine-checked: crates/analysis/src/model.rs enumerates every
// coordinator/worker interleaving and proves the exclusivity, barrier,
// and liveness properties these impls rely on.
unsafe impl<T: Send> Send for Racy<T> {}
// Safety: same argument as Send — the phase protocol serializes all
// cross-thread access, so a shared `&Racy<T>` never yields aliasing
// borrows of the inner T.
unsafe impl<T: Send> Sync for Racy<T> {}

impl<T> Racy<T> {
    fn new(v: T) -> Self {
        Racy(UnsafeCell::new(v))
    }

    /// Exclusive access through a shared borrow.
    ///
    /// # Safety
    /// Callers must hold this cell's claim under the phase protocol
    /// (module docs): one worker per claimed shard while a frame is in
    /// flight, coordinator only between frames. No other `get`/`get_ref`
    /// borrow of this cell may be live.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self) -> &mut T {
        // Safety: caller contract — the claim makes this the only
        // borrow of the cell.
        unsafe { &mut *self.0.get() }
    }

    /// Shared read-only view.
    ///
    /// # Safety
    /// Callers must guarantee no writer (`get` borrow) exists for the
    /// duration of the borrow (e.g. the active list is frozen while a
    /// frame is in flight, or coordinator context with no live `get`).
    unsafe fn get_ref(&self) -> &T {
        // Safety: caller contract — no exclusive borrow is live.
        unsafe { &*self.0.get() }
    }

    /// Exclusive access through an exclusive borrow — always safe.
    fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }
}

/// A buffered cross-shard effect, tagged with a worker-independent total
/// order key `(time, src, seq)`.
struct Staged {
    /// Simulated time of the effect (for port enqueues: ingress + Δ).
    time: SimTime,
    /// Source shard (the host whose event produced the effect).
    src: u32,
    /// Per-source-shard monotone sequence number.
    seq: u64,
    op: StagedOp,
}

enum StagedOp {
    /// Enqueue `frame` on destination shard `dst`'s output port.
    PortEnqueue { dst: u32, frame: Frame },
    /// Apply a snooped IGMP join to the shared switch tables.
    SnoopJoin { group: GroupId, port: SwitchPort },
    /// Apply a snooped IGMP leave to the shared switch tables.
    SnoopLeave { group: GroupId, port: SwitchPort },
}

/// Per-shard statistics delta, folded into the global [`NetStats`] at
/// each frame barrier. Only scalar counters plus this shard's own rows
/// (`frames_per_host[h]`, `links[h]`) — a shard never records stats for
/// another host, so the delta stays O(1) per shard.
#[derive(Default)]
struct ShardDelta {
    frames_sent: u64,
    data_frames_sent: u64,
    ack_frames_sent: u64,
    payload_bytes_sent: u64,
    wire_bytes_sent: u64,
    switch_buffer_drops: u64,
    unicast_only_drops: u64,
    rx_buffer_drops: u64,
    unposted_recv_drops: u64,
    injected_frame_losses: u64,
    injected_duplicates: u64,
    injected_reorders: u64,
    link_delayed_frames: u64,
    partition_drops: u64,
    crashed_frames: u64,
    frames_held: u64,
    frames_released: u64,
    datagrams_delivered: u64,
    /// Frames transmitted by this shard's host.
    frames_tx: u64,
    /// This shard's receiving-link row.
    link: LinkStats,
}

/// One host's slice of the world: its stack, its egress switch port, its
/// local event queue, and its private randomness/topology/trace state.
struct Shard {
    host: HostStack,
    /// The switch output port feeding this host's downlink.
    port: OutPort,
    queue: EventQueue,
    /// Local clock: time of the last event processed on this shard.
    now: SimTime,
    fault_rng: SplitMix64,
    topo: TopoCursor,
    /// Frames parked by a topology hold: `(src, frame)` in arrival order
    /// (the destination is always this shard's host).
    held: Vec<(HostId, Frame)>,
    /// Cross-shard frames bound for this host's output port, kept in
    /// `(time, src, seq)` order past `inbox_pos` — the barrier appends
    /// each frame's new arrivals and sorts only that tail (every barrier
    /// adds entries strictly later than everything before, so the whole
    /// run stays sorted), and the run loop merges the front against the
    /// local event queue by timestamp. This keeps fan-out traffic out of
    /// the binary heap entirely: a multicast to 1023 ports costs 1023
    /// O(1) appends, not 1023 heap round-trips. The middle element is
    /// the packed `(src, seq)` tie-break key for the tail sort.
    inbox: Vec<(SimTime, u128, Frame)>,
    /// Consumed prefix of `inbox`; reset when the inbox fully drains.
    inbox_pos: usize,
    /// Start of the current barrier's unsorted tail; `usize::MAX` when
    /// this shard has no new arrivals this barrier.
    inbox_mark: usize,
    delta: ShardDelta,
    completions: Vec<Completion>,
    trace_buf: Vec<(SimTime, TraceEvent)>,
    trace_enabled: bool,
    /// Monotone counter tagging this shard's staged cross-shard effects.
    out_seq: u64,
}

/// State shared between the coordinator and the worker pool.
struct Shared {
    params: NetParams,
    /// Switch forwarding latency == the frame width Δ.
    latency: SimDuration,
    /// Per-port tail-drop threshold (from the split [`crate::switch::Switch`]).
    buffer_limit: usize,
    /// Read-mostly forwarding tables. Written only from driver context
    /// and at frame barriers (deferred snoops), so phase-A readers never
    /// race a write.
    tables: RwLock<SwitchTables>,
    shards: Vec<Racy<Shard>>,
    /// Per-worker staging buffers for cross-shard effects.
    staging: Vec<Racy<Vec<Staged>>>,
    /// Single-worker mode: the one worker IS the coordinator thread, so
    /// port enqueues skip the staging hop and go straight to the
    /// destination inbox (race-free by construction). The barrier's
    /// canonical per-destination tail sort makes the result byte-equal
    /// to the staged path, so worker-count invariance is preserved.
    direct: bool,
    /// Destinations whose inbox gained entries since the last barrier
    /// (tail-sorted and re-armed there). Written by the coordinator at
    /// barriers, and — in `direct` mode only — by the inline worker
    /// during the phase.
    touched: Racy<Vec<u32>>,
    /// Next pending event per shard, in raw nanoseconds (`u64::MAX` =
    /// idle). Refreshed by whichever worker processed the shard at the
    /// end of its frame slice, and by the coordinator whenever it pushes
    /// an event from driver or barrier context. Lets the coordinator
    /// find the next frame and build the active set without touching
    /// every shard's queue.
    next_ns: Vec<AtomicU64>,
    /// Indices of the shards with events inside the current frame; the
    /// claim cursor indexes into this list, so idle shards cost nothing.
    /// Rebuilt by the coordinator before each frame launch, read-only
    /// while the frame is in flight.
    active: Racy<Vec<u32>>,
    /// Shard-claim cursor for the current frame.
    cursor: AtomicUsize,
    /// Active-list entries claimed per `fetch_add` (set per frame).
    chunk: AtomicUsize,
    /// End of the current frame (exclusive), in raw nanoseconds.
    frame_end_ns: AtomicU64,
    /// Frame generation; a bump launches the worker pool on a new frame.
    gen: AtomicU64,
    /// Workers (excluding the coordinator) done with the current frame.
    done: AtomicUsize,
    shutdown: AtomicBool,
    mutex: Mutex<()>,
    condvar: Condvar,
}

/// The frame-based parallel engine (see module docs). Constructed from
/// an [`EngineParts`] handed over by the event-loop engine; driven
/// through the same facade methods.
pub(crate) struct ParEngine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    /// World clock: the last frame boundary reached.
    now: SimTime,
    /// Global statistics, *excluding* whatever has accumulated in the
    /// per-shard deltas since the last read. Shard deltas are folded in
    /// lazily by [`Self::stats`]/[`Self::stats_mut`] rather than at
    /// every frame barrier — a pure counter fold commutes with frame
    /// boundaries, so deferring it off the per-frame path changes
    /// nothing observable. Interior mutability lets the `&self` read
    /// path do the fold; only coordinator context ever touches it.
    stats: Racy<NetStats>,
    next_datagram_id: u64,
    next_control_frame_id: u64,
    trace: Option<Trace>,
}

impl ParEngine {
    pub(crate) fn new(parts: EngineParts, workers: usize) -> Self {
        let EngineParts {
            n,
            hosts,
            switch,
            params,
            stats,
            seed,
            now,
            next_datagram_id,
            trace_capacity,
        } = parts;
        let latency = match &params.fabric {
            FabricKind::Switch(sp) => sp.forwarding_latency,
            FabricKind::Hub => unreachable!("parallel engine is switch-only"),
        };
        assert!(
            latency > SimDuration::ZERO,
            "frame engine needs nonzero forwarding latency for lookahead"
        );
        let (tables, ports, buffer_limit) = switch.split();
        assert_eq!(ports.len(), n);
        // Independent per-host fault streams, forked in host order from
        // the same salted seed the event engine uses for its single
        // stream (streams differ from the event engine's by design; see
        // module docs).
        let mut fault_base = SplitMix64::new(seed ^ FAULT_RNG_SALT);
        let op_times = params.faults.topology.op_times();
        let shards: Vec<Shard> = hosts
            .into_iter()
            .zip(ports)
            .enumerate()
            .map(|(h, (host, port))| {
                let mut queue = EventQueue::new();
                // Each shard wakes independently at every scripted op time
                // so holds release even on idle links. Times already in
                // the past (mid-run conversion) fire immediately.
                for &t in &op_times {
                    queue.schedule(t.max(now), Event::TopologyWake);
                }
                Shard {
                    host,
                    port,
                    queue,
                    now,
                    fault_rng: fault_base.fork(h as u64),
                    topo: TopoCursor::new(&params.faults.topology),
                    held: Vec::new(),
                    inbox: Vec::new(),
                    inbox_pos: 0,
                    inbox_mark: usize::MAX,
                    delta: ShardDelta::default(),
                    completions: Vec::new(),
                    trace_buf: Vec::new(),
                    trace_enabled: false,
                    out_seq: 0,
                }
            })
            .collect();
        let next_ns: Vec<AtomicU64> = shards
            .iter()
            .map(|s| AtomicU64::new(s.queue.peek_time().map_or(u64::MAX, |t| t.as_nanos())))
            .collect();
        let shards: Vec<Racy<Shard>> = shards.into_iter().map(Racy::new).collect();
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            params,
            latency,
            buffer_limit,
            tables: RwLock::new(tables),
            shards,
            staging: (0..workers).map(|_| Racy::new(Vec::new())).collect(),
            direct: workers == 1,
            touched: Racy::new(Vec::new()),
            next_ns,
            active: Racy::new(Vec::new()),
            cursor: AtomicUsize::new(0),
            chunk: AtomicUsize::new(1),
            frame_end_ns: AtomicU64::new(0),
            gen: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            mutex: Mutex::new(()),
            condvar: Condvar::new(),
        });
        let handles = (1..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("netsim-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn netsim worker")
            })
            .collect();
        let mut engine = ParEngine {
            shared,
            handles,
            workers,
            now,
            stats: Racy::new(stats),
            next_datagram_id,
            next_control_frame_id: CONTROL_FRAME_ID_BASE,
            trace: None,
        };
        if let Some(cap) = trace_capacity {
            engine.enable_trace(cap);
        }
        engine
    }

    /// Exclusive shard access from coordinator context.
    ///
    /// # Safety
    /// Only from coordinator (driver) context — `&self` methods are
    /// never called while a frame is in flight because frames only run
    /// inside `advance_once(&mut self)` — and no other borrow of this
    /// shard (from `shard` or `shard_ref`) may be live.
    #[allow(clippy::mut_from_ref)]
    unsafe fn shard(&self, h: HostId) -> &mut Shard {
        // Safety: caller contract above.
        unsafe { self.shared.shards[h.index()].get() }
    }

    /// Shared shard view from coordinator context. Prefer this over
    /// [`Self::shard`] for reads: repeated `&mut` from `shard` would
    /// alias, while shared reborrows stack soundly.
    ///
    /// # Safety
    /// Coordinator context (as for [`Self::shard`]), with no live
    /// exclusive borrow of this shard.
    unsafe fn shard_ref(&self, h: HostId) -> &Shard {
        // Safety: caller contract above — no writer exists.
        unsafe { self.shared.shards[h.index()].get_ref() }
    }

    /// Record a coordinator-context event push into `host`'s queue so
    /// the shard shows up in the next frame's active set.
    fn note_scheduled(&self, host: HostId, at: SimTime) {
        let slot = &self.shared.next_ns[host.index()];
        let ns = at.as_nanos();
        if ns < slot.load(Ordering::Relaxed) {
            slot.store(ns, Ordering::Relaxed);
        }
    }

    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    pub(crate) fn host_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Fold every shard's accumulated delta into the global statistics.
    /// Deltas build up across frames (the barrier never sweeps them) and
    /// drain here, on a stats read; host order keeps the result equal to
    /// a per-frame fold regardless of when the read happens.
    fn fold_pending(&self) {
        // Safety: coordinator context — never called while a frame is in
        // flight (frames run only inside `advance_once(&mut self)`).
        let stats = unsafe { self.stats.get() };
        for (h, shard) in self.shared.shards.iter().enumerate() {
            // Safety: coordinator context.
            let shard = unsafe { shard.get() };
            fold_delta(stats, h, std::mem::take(&mut shard.delta));
        }
    }

    pub(crate) fn stats(&self) -> &NetStats {
        self.fold_pending();
        // Safety: coordinator context; `fold_pending`'s writer is gone.
        unsafe { self.stats.get_ref() }
    }

    pub(crate) fn stats_mut(&mut self) -> &mut NetStats {
        self.fold_pending();
        self.stats.get_mut()
    }

    pub(crate) fn params(&self) -> &NetParams {
        &self.shared.params
    }

    pub(crate) fn host(&self, h: HostId) -> &HostStack {
        // Safety: coordinator context (see `shard_ref`); a shared view
        // keeps repeated `host()` calls from creating aliasing `&mut`s.
        &unsafe { self.shard_ref(h) }.host
    }

    pub(crate) fn host_mut(&mut self, h: HostId) -> &mut HostStack {
        // Safety: coordinator context with exclusive access.
        &mut unsafe { self.shard(h) }.host
    }

    pub(crate) fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
        for shard in &self.shared.shards {
            // Safety: coordinator context with exclusive access.
            unsafe { shard.get() }.trace_enabled = true;
        }
    }

    pub(crate) fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    pub(crate) fn bind(&mut self, host: HostId, port: UdpPort) -> SocketId {
        self.host_mut(host).bind(port)
    }

    pub(crate) fn join_group_quiet(&mut self, host: HostId, socket: SocketId, group: GroupId) {
        // Safety: coordinator context.
        unsafe { self.shard(host) }.host.join_group(socket, group);
        self.shared
            .tables
            .write()
            .unwrap()
            .snoop_join(group, SwitchPort(host.0));
    }

    pub(crate) fn leave_group_quiet(&mut self, host: HostId, socket: SocketId, group: GroupId) {
        // Safety: coordinator context.
        let h = &mut unsafe { self.shard(host) }.host;
        h.leave_group(socket, group);
        if !h.nic.is_member(group) {
            self.shared
                .tables
                .write()
                .unwrap()
                .snoop_leave(group, SwitchPort(host.0));
        }
    }

    pub(crate) fn join_group_igmp(
        &mut self,
        host: HostId,
        socket: SocketId,
        group: GroupId,
        at: SimTime,
    ) {
        let at = at.max(self.now);
        let id = self.next_control_frame_id;
        self.next_control_frame_id += 1;
        // Safety: coordinator context.
        let shard = unsafe { self.shard(host) };
        shard.host.join_group(socket, group);
        let frame = Frame {
            id,
            src: host,
            dst: FrameDst::Broadcast,
            mac_payload: 46,
            payload: FramePayload::IgmpJoin { group },
        };
        if shard.host.nic.enqueue(frame) {
            shard.host.nic.tx_busy = true;
            shard.queue.schedule(at, Event::NicTxNext { host });
            self.note_scheduled(host, at);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_datagram(
        &mut self,
        host: HostId,
        src_port: UdpPort,
        dst: DatagramDst,
        dst_port: UdpPort,
        payload: SharedPayload,
        at: SimTime,
        multicast_loopback: bool,
        kernel: bool,
    ) -> u64 {
        // Injections land no earlier than the current frame boundary —
        // the frame clock has already passed `at` (documented divergence
        // from the event-loop engine, bounded by Δ).
        let at = at.max(self.now);
        let id = self.next_datagram_id;
        self.next_datagram_id += 1;
        let datagram = Arc::new(Datagram {
            id,
            src_host: host,
            src_port,
            dst,
            dst_port,
            payload,
            kernel,
        });
        let stats = self.stats.get_mut();
        if kernel {
            stats.kernel_datagrams_sent += 1;
        } else {
            stats.datagrams_sent += 1;
            match dst {
                DatagramDst::Multicast(_) => stats.mcast_datagrams_sent += 1,
                DatagramDst::Unicast(_) => stats.unicast_datagrams_sent += 1,
            }
        }
        // Safety: coordinator context.
        let shard = unsafe { self.shard(host) };
        match dst {
            DatagramDst::Unicast(d) if d == host => {
                shard
                    .queue
                    .schedule(at, Event::LoopbackDelivery { host, datagram });
            }
            _ => {
                if multicast_loopback && matches!(dst, DatagramDst::Multicast(_)) {
                    shard.queue.schedule(
                        at,
                        Event::LoopbackDelivery {
                            host,
                            datagram: Arc::clone(&datagram),
                        },
                    );
                }
                shard
                    .queue
                    .schedule(at, Event::DatagramReady { host, datagram });
            }
        }
        self.note_scheduled(host, at);
        id
    }

    pub(crate) fn schedule_post_recv(&mut self, host: HostId, socket: SocketId, at: SimTime) {
        let at = at.max(self.now);
        // Safety: coordinator context.
        unsafe { self.shard(host) }
            .queue
            .schedule(at, Event::PostRecv { host, socket });
        self.note_scheduled(host, at);
    }

    pub(crate) fn schedule_timer(
        &mut self,
        host: HostId,
        socket: Option<SocketId>,
        token: u64,
        at: SimTime,
    ) {
        let at = at.max(self.now);
        // Safety: coordinator context.
        unsafe { self.shard(host) }.queue.schedule(
            at,
            Event::Timer {
                host,
                socket,
                token,
            },
        );
        self.note_scheduled(host, at);
    }

    /// Advance by one non-empty frame: find the earliest pending event,
    /// run the frame window containing it across the worker pool, merge
    /// at the barrier, and report the frame's completions.
    pub(crate) fn advance_once(&mut self) -> StepOutcome {
        // Dense scan of the per-shard next-event cache: no queue is
        // touched to find the next frame or to build its active set.
        let mut earliest_ns = u64::MAX;
        for slot in &self.shared.next_ns {
            earliest_ns = earliest_ns.min(slot.load(Ordering::Relaxed));
        }
        if earliest_ns == u64::MAX {
            return StepOutcome::Quiescent;
        }
        let t0 = SimTime::from_nanos(earliest_ns);
        let q = self.shared.latency.as_nanos();
        let frame_end = SimTime::from_nanos((t0.as_nanos() / q + 1) * q);
        let frame_end_ns = frame_end.as_nanos();

        // Build the frame's active set: only shards with an event inside
        // the window get claimed, so an idle host costs one atomic load.
        {
            // Safety: coordinator context, workers idle.
            let active = unsafe { self.shared.active.get() };
            active.clear();
            for (h, slot) in self.shared.next_ns.iter().enumerate() {
                if slot.load(Ordering::Relaxed) < frame_end_ns {
                    active.push(h as u32);
                }
            }
            let chunk = (active.len() / (self.workers * 4)).max(1);
            self.shared.chunk.store(chunk, Ordering::Relaxed);
        }

        // Launch the frame on the pool; the coordinator works as worker 0.
        self.shared
            .frame_end_ns
            .store(frame_end_ns, Ordering::Relaxed);
        self.shared.cursor.store(0, Ordering::Relaxed);
        if self.workers == 1 {
            // No pool to wake or wait for: the coordinator runs the
            // whole frame inline, skipping the generation handshake.
            run_phase(&self.shared, 0);
        } else {
            self.shared.done.store(0, Ordering::Relaxed);
            {
                let _g = self.shared.mutex.lock();
                self.shared.gen.fetch_add(1, Ordering::Release);
            }
            self.shared.condvar.notify_all();
            run_phase(&self.shared, 0);
            let mut spins = 0u32;
            while self.shared.done.load(Ordering::Acquire) < self.workers - 1 {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(SPIN_ITERS) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }

        // ---- barrier: serial merge in deterministic order ----
        // Scatter each worker's staged effects straight to their
        // destination inboxes, then restore per-destination `(time, src,
        // seq)` order by sorting only each touched inbox's new tail.
        // The scatter order (worker-major) varies with the worker count
        // but the *set* per destination does not, and the unique sort
        // key makes the per-destination order canonical — so the result
        // is worker-count invariant without a global sort. Snoops are
        // ordered among themselves; they touch only the shared tables,
        // which no phase reads until the next frame.
        let mut snoops: Vec<(SimTime, u32, u64, StagedOp)> = Vec::new();
        for w in 0..self.workers {
            // Safety: coordinator context, workers parked (done counter
            // acquired above). In direct mode port enqueues never get
            // staged, so this loop only ever sees snoops there.
            let staging = unsafe { self.shared.staging[w].get() };
            for st in staging.drain(..) {
                match st.op {
                    StagedOp::PortEnqueue { dst, frame } => {
                        debug_assert!(st.time >= frame_end);
                        // Safety: coordinator context.
                        let shard = unsafe { self.shared.shards[dst as usize].get() };
                        let key = ((st.src as u128) << 64) | st.seq as u128;
                        inbox_push(
                            shard,
                            st.time,
                            key,
                            frame,
                            // Safety: coordinator context.
                            unsafe { self.shared.touched.get() },
                            dst,
                        );
                    }
                    op => snoops.push((st.time, st.src, st.seq, op)),
                }
            }
        }
        // Canonicalize each touched inbox's new tail and publish its
        // earliest arrival — one `next_ns` update per destination, not
        // one per frame.
        // Safety: coordinator context.
        let touched = unsafe { self.shared.touched.get() };
        for &dst in touched.iter() {
            // Safety: coordinator context.
            let shard = unsafe { self.shared.shards[dst as usize].get() };
            let mark = std::mem::replace(&mut shard.inbox_mark, usize::MAX);
            shard.inbox[mark..].sort_unstable_by_key(|e| (e.0, e.1));
            self.note_scheduled(HostId(dst), shard.inbox[mark].0);
        }
        touched.clear();
        if !snoops.is_empty() {
            snoops.sort_unstable_by_key(|(t, src, seq, _)| (*t, *src, *seq));
            let mut tables = self.shared.tables.write().unwrap();
            for (_, _, _, op) in snoops {
                match op {
                    StagedOp::SnoopJoin { group, port } => tables.snoop_join(group, port),
                    StagedOp::SnoopLeave { group, port } => tables.snoop_leave(group, port),
                    StagedOp::PortEnqueue { .. } => unreachable!(),
                }
            }
        }

        let mut completions: Vec<Completion> = Vec::new();
        let mut trace_bufs: Vec<(SimTime, TraceEvent)> = Vec::new();
        // Only shards the frame actually ran can have produced
        // completions or trace records. Stats deltas stay buffered in
        // the shards and drain on the next `stats()` read instead of
        // being swept every frame (see `fold_pending`).
        // Safety: coordinator context; the list is read back in place.
        let active = std::mem::take(unsafe { self.shared.active.get() });
        for &h in &active {
            let h = h as usize;
            // Safety: coordinator context.
            let shard = unsafe { self.shared.shards[h].get() };
            completions.append(&mut shard.completions);
            if shard.trace_enabled {
                trace_bufs.append(&mut shard.trace_buf);
            }
        }
        // Safety: coordinator context.
        *unsafe { self.shared.active.get() } = active;
        // Shard-major concatenation is already time-ordered within each
        // shard; a stable sort by time yields (time, host) order.
        completions.sort_by_key(|c| c.at());
        if let Some(trace) = &mut self.trace {
            trace_bufs.sort_by_key(|(at, _)| *at);
            for (at, ev) in trace_bufs {
                trace.push(at, ev);
            }
        }

        self.now = frame_end;
        StepOutcome::Advanced {
            now: frame_end,
            completions,
        }
    }
}

impl Drop for ParEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.mutex.lock();
        }
        self.shared.condvar.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Append one cross-shard arrival to `shard`'s inbox, recycling the
/// buffer when fully drained and recording the first touch since the
/// last barrier in `touched` (the barrier tail-sorts from `inbox_mark`
/// and re-arms it). Shared by the barrier drain (staged mode) and the
/// inline single-worker fast path.
fn inbox_push(
    shard: &mut Shard,
    time: SimTime,
    key: u128,
    frame: Frame,
    touched: &mut Vec<u32>,
    dst: u32,
) {
    if shard.inbox_pos == shard.inbox.len() && shard.inbox_pos > 0 {
        // Fully drained: recycle the buffer.
        shard.inbox.clear();
        shard.inbox_pos = 0;
    }
    if shard.inbox_mark == usize::MAX {
        shard.inbox_mark = shard.inbox.len();
        touched.push(dst);
    }
    shard.inbox.push((time, key, frame));
}

/// Fold one shard's frame delta into the global statistics.
fn fold_delta(stats: &mut NetStats, h: usize, d: ShardDelta) {
    stats.frames_sent += d.frames_sent;
    stats.data_frames_sent += d.data_frames_sent;
    stats.ack_frames_sent += d.ack_frames_sent;
    stats.payload_bytes_sent += d.payload_bytes_sent;
    stats.wire_bytes_sent += d.wire_bytes_sent;
    stats.switch_buffer_drops += d.switch_buffer_drops;
    stats.unicast_only_drops += d.unicast_only_drops;
    stats.rx_buffer_drops += d.rx_buffer_drops;
    stats.unposted_recv_drops += d.unposted_recv_drops;
    stats.injected_frame_losses += d.injected_frame_losses;
    stats.injected_duplicates += d.injected_duplicates;
    stats.injected_reorders += d.injected_reorders;
    stats.link_delayed_frames += d.link_delayed_frames;
    stats.partition_drops += d.partition_drops;
    stats.crashed_frames += d.crashed_frames;
    stats.frames_held += d.frames_held;
    stats.frames_released += d.frames_released;
    stats.datagrams_delivered += d.datagrams_delivered;
    stats.frames_per_host[h] += d.frames_tx;
    let l = &mut stats.links[h];
    l.frames_delivered += d.link.frames_delivered;
    l.injected_drops += d.link.injected_drops;
    l.injected_dups += d.link.injected_dups;
    l.injected_reorders += d.link.injected_reorders;
    l.delayed_frames += d.link.delayed_frames;
    l.partition_drops += d.link.partition_drops;
    l.data_chunks_delivered += d.link.data_chunks_delivered;
    l.duplicate_data_chunks += d.link.duplicate_data_chunks;
}

fn worker_loop(shared: &Shared, worker_id: usize) {
    let mut seen_gen = 0u64;
    loop {
        // Wait for the next frame launch: spin briefly, then park.
        let mut spins = 0u32;
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let g = shared.gen.load(Ordering::Acquire);
            if g != seen_gen {
                seen_gen = g;
                break;
            }
            spins += 1;
            if spins < SPIN_ITERS {
                std::hint::spin_loop();
            } else {
                let mut guard = shared.mutex.lock();
                loop {
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let g = shared.gen.load(Ordering::Acquire);
                    if g != seen_gen {
                        seen_gen = g;
                        break;
                    }
                    shared.condvar.wait(&mut guard);
                }
                break;
            }
        }
        run_phase(shared, worker_id);
        shared.done.fetch_add(1, Ordering::Release);
    }
}

/// Claim active-list entries through the cursor and run each claimed
/// shard up to the frame end.
fn run_phase(shared: &Shared, worker_id: usize) {
    let frame_end = SimTime::from_nanos(shared.frame_end_ns.load(Ordering::Relaxed));
    // Safety: the active list is frozen while the frame is in flight.
    let active = unsafe { shared.active.get_ref() };
    let n = active.len();
    let chunk = shared.chunk.load(Ordering::Relaxed);
    loop {
        let start = shared.cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            break;
        }
        for &s in &active[start..(start + chunk).min(n)] {
            let s = s as usize;
            // Safety: the cursor hands each active entry to exactly one
            // worker per frame.
            let shard = unsafe { shared.shards[s].get() };
            // Safety: the staging slot is indexed by `worker_id`, so it
            // is this worker's own — no other thread touches it while
            // the frame is in flight.
            let staging = unsafe { shared.staging[worker_id].get() };
            ShardCtx {
                shard,
                staging,
                shared,
            }
            .run(frame_end);
            // Publish the shard's next local event time (heap or inbox)
            // for the coordinator's frame scan (ordered by the done
            // counter).
            // Safety: same claim as above — this worker still owns the
            // shard's cursor slot; the previous borrow ended with
            // `run`.
            let shard = unsafe { shared.shards[s].get() };
            let mut next = shard.queue.peek_time().map_or(u64::MAX, |t| t.as_nanos());
            if let Some((t, _, _)) = shard.inbox.get(shard.inbox_pos) {
                next = next.min(t.as_nanos());
            }
            shared.next_ns[s].store(next, Ordering::Relaxed);
        }
    }
}

/// One worker's view while processing a single shard.
struct ShardCtx<'a> {
    shard: &'a mut Shard,
    staging: &'a mut Vec<Staged>,
    shared: &'a Shared,
}

impl ShardCtx<'_> {
    /// Process this shard's events with `time < frame_end` in
    /// `(time, local seq)` order, merging the local heap with the
    /// time-sorted cross-shard inbox by front timestamp. On a tie the
    /// inbox entry goes first: it was produced (and globally ordered) a
    /// frame earlier than anything the heap can still hold at that
    /// instant, and a fixed rule is all determinism needs.
    fn run(mut self, frame_end: SimTime) {
        loop {
            let queue_at = self.shard.queue.peek_time().filter(|t| *t < frame_end);
            let inbox_at = self
                .shard
                .inbox
                .get(self.shard.inbox_pos)
                .map(|(t, _, _)| *t)
                .filter(|t| *t < frame_end);
            let take_inbox = match (inbox_at, queue_at) {
                (Some(i), Some(q)) => i <= q,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_inbox {
                let pos = self.shard.inbox_pos;
                self.shard.inbox_pos += 1;
                // Take the frame out without shifting the prefix (the
                // barrier recycles the buffer once it fully drains); the
                // placeholder is a payload-free dummy, never read back.
                let (at, _, frame) = std::mem::replace(
                    &mut self.shard.inbox[pos],
                    (
                        SimTime::ZERO,
                        0,
                        Frame {
                            id: 0,
                            src: HostId(0),
                            dst: FrameDst::Unicast(HostId(0)),
                            mac_payload: 0,
                            payload: FramePayload::IgmpJoin { group: GroupId(0) },
                        },
                    ),
                );
                debug_assert!(at >= self.shard.now, "shard time went backwards");
                self.shard.now = at;
                self.port_enqueue(frame);
            } else {
                let (at, event) = self.shard.queue.pop().expect("peeked");
                debug_assert!(at >= self.shard.now, "shard time went backwards");
                self.shard.now = at;
                self.handle(event);
            }
        }
    }

    fn own_host(&self) -> HostId {
        self.shard.host.id
    }

    fn trace_push(&mut self, event: TraceEvent) {
        if self.shard.trace_enabled {
            self.shard.trace_buf.push((self.shard.now, event));
        }
    }

    /// Buffer a cross-shard effect with this shard's next order tag.
    fn stage(&mut self, time: SimTime, op: StagedOp) {
        let seq = self.shard.out_seq;
        self.shard.out_seq += 1;
        self.staging.push(Staged {
            time,
            src: self.own_host().0,
            seq,
            op,
        });
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::DatagramReady { datagram, .. } => {
                // Frame ids derive from the datagram id so they are
                // independent of shard interleaving.
                let dg_id = datagram.id;
                let mut k = 0u64;
                let frames = fragment_datagram(
                    datagram,
                    &self.shared.params.ip,
                    self.shared.params.ethernet.mtu_bytes,
                    || {
                        let id = (dg_id << 16) | k;
                        k += 1;
                        id
                    },
                );
                let nic = &mut self.shard.host.nic;
                let mut kick = false;
                for f in frames {
                    kick |= nic.enqueue(f);
                }
                if kick {
                    nic.tx_busy = true;
                    let host = self.own_host();
                    let at = self.shard.now;
                    self.shard.queue.schedule(at, Event::NicTxNext { host });
                }
            }
            Event::LoopbackDelivery { datagram, .. } => {
                self.deliver_datagram(datagram);
            }
            Event::NicTxNext { .. } => self.nic_tx_next(),
            Event::SwitchIngress { frame, in_port } => self.switch_ingress(frame, in_port),
            Event::PortEnqueue { frame, .. } => self.port_enqueue(frame),
            Event::PortDelivered { frame, .. } => self.port_delivered(frame),
            Event::PortTxNext { .. } => self.port_tx_next(),
            Event::LinkRedeliver { frame, .. } => self.receive_frame(&frame),
            Event::TopologyWake => {
                let now = self.shard.now;
                let released = self.shard.topo.advance_to(now);
                self.apply_releases(released);
            }
            Event::PostRecv { host, socket } => {
                debug_assert_eq!(host, self.own_host());
                let at = self.shard.now;
                let sock = self.shard.host.socket_mut(socket);
                sock.recv_posted = true;
                if sock.buffered() > 0 {
                    self.shard
                        .completions
                        .push(Completion::RecvReady { host, socket, at });
                }
            }
            Event::Timer {
                host,
                socket,
                token,
            } => {
                debug_assert_eq!(host, self.own_host());
                if !self.shard.host.take_timer_cancellation(token) {
                    let at = self.shard.now;
                    self.shard.completions.push(Completion::TimerFired {
                        host,
                        socket,
                        token,
                        at,
                    });
                }
            }
            Event::SwitchForward { .. }
            | Event::HubArbitrate
            | Event::HubFrameDelivered { .. }
            | Event::NicRetry { .. } => {
                unreachable!("event not used by the frame engine")
            }
        }
    }

    /// Begin serializing the next queued frame on this host's uplink.
    fn nic_tx_next(&mut self) {
        let Some(frame) = self.shard.host.nic.pop_head() else {
            self.shard.host.nic.tx_busy = false;
            return;
        };
        self.shard.host.nic.tx_busy = true;
        let eth = &self.shared.params.ethernet;
        let wire = eth.frame_wire_time(frame.mac_payload);
        let wire_bytes = (eth.preamble_bytes
            + eth.mac_header_bytes
            + frame.mac_payload.max(eth.min_payload_bytes)
            + eth.fcs_bytes) as u64;
        let class = frame_class(&frame);
        let ingress_after = match &self.shared.params.fabric {
            FabricKind::Switch(sp) => match sp.mode {
                SwitchMode::StoreAndForward => wire,
                SwitchMode::CutThrough { header_bytes } => {
                    eth.byte_time(u64::from((eth.preamble_bytes + header_bytes).min(
                        eth.preamble_bytes
                            + eth.mac_header_bytes
                            + frame.mac_payload.max(eth.min_payload_bytes)
                            + eth.fcs_bytes,
                    )))
                }
            },
            FabricKind::Hub => unreachable!(),
        };
        let ingress_at = self.shard.now + ingress_after + eth.prop_delay;
        let next_at = self.shard.now + wire + eth.ifg_time();
        self.record_frame_sent(frame.mac_payload, wire_bytes, class);
        let host = self.own_host();
        self.trace_push(TraceEvent::TxStart {
            src: host,
            frame: frame.id,
            bytes: frame.mac_payload,
        });
        self.shard.queue.schedule(
            ingress_at,
            Event::SwitchIngress {
                frame,
                in_port: SwitchPort(host.0),
            },
        );
        self.shard
            .queue
            .schedule(next_at, Event::NicTxNext { host });
    }

    fn record_frame_sent(&mut self, mac_payload: u32, wire_bytes: u64, class: FrameClass) {
        let d = &mut self.shard.delta;
        d.frames_sent += 1;
        match class {
            FrameClass::Data => d.data_frames_sent += 1,
            FrameClass::KernelAck => d.ack_frames_sent += 1,
            FrameClass::Control => {}
        }
        d.payload_bytes_sent += mac_payload as u64;
        d.wire_bytes_sent += wire_bytes;
        d.frames_tx += 1;
    }

    /// The last bit of one of this host's frames arrived at the switch.
    /// Fan-out crosses shard boundaries, so every target port enqueue is
    /// staged at `now + Δ` — the frame engine's whole lookahead argument.
    fn switch_ingress(&mut self, frame: Frame, in_port: SwitchPort) {
        // The static star is pre-learned and a host only ingresses on its
        // own port, so the MAC table never changes mid-run — skipping the
        // write keeps phase A free of table writes.
        debug_assert!(self.shared.tables.read().unwrap().knows(frame.src, in_port));
        let now = self.shard.now;
        match &frame.payload {
            FramePayload::IgmpJoin { group } => {
                // Deferred to the frame barrier (applied in staged order);
                // membership becomes visible the next frame.
                let group = *group;
                self.stage(
                    now,
                    StagedOp::SnoopJoin {
                        group,
                        port: in_port,
                    },
                );
            }
            FramePayload::IgmpLeave { group } => {
                let group = *group;
                self.stage(
                    now,
                    StagedOp::SnoopLeave {
                        group,
                        port: in_port,
                    },
                );
            }
            FramePayload::Fragment { .. } => {
                let at = now + self.shared.latency;
                let tables = self.shared.tables.read().unwrap();
                if tables.unicast_only() && matches!(frame.dst, FrameDst::Multicast(_)) {
                    self.shard.delta.unicast_only_drops += 1;
                    return;
                }
                let targets = tables.forward_set(&frame, in_port).ports;
                drop(tables);
                if self.shared.direct {
                    // Single-worker fast path: this thread is the only
                    // one running, so the destination inbox can be
                    // written without the staging hop. `out_seq` is
                    // bumped exactly as `stage` would, so the barrier's
                    // canonical tail sort sees identical keys and the
                    // result is byte-equal to the staged path.
                    let src = self.own_host().0;
                    for port in targets {
                        let seq = self.shard.out_seq;
                        self.shard.out_seq += 1;
                        let key = ((src as u128) << 64) | seq as u128;
                        // Safety: single-worker mode; `forward_set`
                        // never includes the ingress port, so `dst` is
                        // not the shard this context holds `&mut` to.
                        let dst = unsafe { self.shared.shards[port.0 as usize].get() };
                        // Safety: single-worker mode — no other thread
                        // exists to contend for the touched set.
                        let touched = unsafe { self.shared.touched.get() };
                        inbox_push(dst, at, key, frame.clone(), touched, port.0);
                    }
                } else {
                    for port in targets {
                        self.stage(
                            at,
                            StagedOp::PortEnqueue {
                                dst: port.0,
                                frame: frame.clone(),
                            },
                        );
                    }
                }
            }
        }
    }

    /// A forwarded frame lands on this host's output port (merged from
    /// another shard at the previous frame barrier).
    fn port_enqueue(&mut self, frame: Frame) {
        match self.shard.port.enqueue(frame, self.shared.buffer_limit) {
            Ok(true) => self.port_tx_next(),
            Ok(false) => {}
            Err(()) => self.shard.delta.switch_buffer_drops += 1,
        }
    }

    /// Begin serializing the next queued frame on this host's downlink.
    fn port_tx_next(&mut self) {
        let Some(frame) = self.shard.port.dequeue() else {
            self.shard.port.tx_busy = false;
            return;
        };
        self.shard.port.tx_busy = true;
        let eth = &self.shared.params.ethernet;
        let wire = eth.frame_wire_time(frame.mac_payload);
        let delivered_at = self.shard.now + wire + eth.prop_delay;
        let next_at = self.shard.now + wire + eth.ifg_time();
        let port = SwitchPort(self.own_host().0);
        self.shard
            .queue
            .schedule(delivered_at, Event::PortDelivered { frame, port });
        self.shard
            .queue
            .schedule(next_at, Event::PortTxNext { port });
    }

    fn port_delivered(&mut self, frame: Frame) {
        let host = self.own_host();
        if self.shared.params.frame_loss_prob > 0.0 {
            let p = self.shared.params.frame_loss_prob;
            // The event engine draws this from its global stream; here it
            // comes from the shard stream (documented divergence).
            if self.shard.fault_rng.coin(p) {
                self.shard.delta.injected_frame_losses += 1;
                return;
            }
        }
        let accepted = frame.accepted_by(host, |g| self.shard.host.nic.is_member(g));
        if accepted {
            self.link_deliver(&frame);
        }
    }

    /// Re-deliver frames parked under just-released holds targeting this
    /// host, in arrival order (no further fault rolls).
    fn apply_releases(&mut self, released: Vec<(HostId, HostId)>) {
        let own = self.own_host();
        for (src, dst) in released {
            if dst != own {
                continue; // another shard's link; its own cursor handles it
            }
            let mut i = 0;
            while i < self.shard.held.len() {
                if self.shard.held[i].0 == src {
                    let (_, frame) = self.shard.held.remove(i);
                    self.shard.delta.frames_released += 1;
                    self.receive_frame(&frame);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Last hop onto this host's link — the same dice order as the event
    /// engine (hold, partition, drop, reorder, dup, extra delay), drawn
    /// from this shard's private stream.
    fn link_deliver(&mut self, frame: &Frame) {
        let host = self.own_host();
        if self.shared.params.faults.is_inert() {
            self.receive_frame(frame);
            return;
        }
        let now = self.shard.now;
        let released = self.shard.topo.advance_to(now);
        if !released.is_empty() {
            self.apply_releases(released);
        }
        if self.shard.topo.is_held(frame.src, host) {
            self.shard.delta.frames_held += 1;
            self.shard.held.push((frame.src, frame.clone()));
            return;
        }
        if self.shard.topo.separated(frame.src, host) {
            self.shard.delta.partition_drops += 1;
            self.shard.delta.link.partition_drops += 1;
            self.trace_push(TraceEvent::Drop {
                host,
                reason: "partition",
            });
            return;
        }
        let drop_p = self.shared.params.faults.drop_prob_for(host);
        if drop_p > 0.0 && self.shard.fault_rng.coin(drop_p) {
            self.shard.delta.injected_frame_losses += 1;
            self.shard.delta.link.injected_drops += 1;
            self.trace_push(TraceEvent::Drop {
                host,
                reason: "injected loss",
            });
            return;
        }
        let reorder_p = self.shared.params.faults.reorder_prob;
        if reorder_p > 0.0 && self.shard.fault_rng.coin(reorder_p) {
            let max = self
                .shared
                .params
                .faults
                .reorder_max_delay
                .as_nanos()
                .max(1);
            let delay = SimDuration::from_nanos(self.shard.fault_rng.range_inclusive(1, max));
            self.shard.delta.injected_reorders += 1;
            self.shard.delta.link.injected_reorders += 1;
            self.shard.queue.schedule(
                now + delay,
                Event::LinkRedeliver {
                    host,
                    frame: frame.clone(),
                },
            );
            return;
        }
        let dup_p = self.shared.params.faults.dup_prob;
        if dup_p > 0.0 && self.shard.fault_rng.coin(dup_p) {
            self.shard.delta.injected_duplicates += 1;
            self.shard.delta.link.injected_dups += 1;
            let slot = self.shared.params.ethernet.frame_slot(frame.mac_payload);
            self.shard.queue.schedule(
                now + slot,
                Event::LinkRedeliver {
                    host,
                    frame: frame.clone(),
                },
            );
        }
        let extra = self.shared.params.faults.extra_delay_for(host);
        if extra.as_nanos() > 0 {
            self.shard.delta.link_delayed_frames += 1;
            self.shard.delta.link.delayed_frames += 1;
            self.shard.queue.schedule(
                now + extra,
                Event::LinkRedeliver {
                    host,
                    frame: frame.clone(),
                },
            );
            return;
        }
        self.receive_frame(frame);
    }

    fn receive_frame(&mut self, frame: &Frame) {
        let host = self.own_host();
        // Final-hop check, mirroring the event engine: in-flight frames
        // already past the dice (reorders, dups, delays, released holds)
        // die with the host too.
        if self.shard.topo.is_crashed(host) {
            self.shard.delta.crashed_frames += 1;
            self.trace_push(TraceEvent::Drop {
                host,
                reason: "crashed host",
            });
            return;
        }
        self.shard.delta.link.frames_delivered += 1;
        self.trace_push(TraceEvent::Delivered {
            dst: host,
            frame: frame.id,
        });
        if let FramePayload::Fragment {
            datagram,
            index,
            count,
        } = &frame.payload
        {
            let datagram = Arc::clone(datagram);
            let (index, count) = (*index, *count);
            let complete = self.shard.host.receive_fragment(&datagram, index, count);
            if let Some(dg) = complete {
                if let Some(dup) = self.shard.host.note_crossing(&dg) {
                    self.shard.delta.link.data_chunks_delivered += 1;
                    if dup {
                        self.shard.delta.link.duplicate_data_chunks += 1;
                    }
                }
                self.deliver_datagram(dg);
            }
        }
    }

    fn deliver_datagram(&mut self, dg: Arc<Datagram>) {
        let host = self.own_host();
        let now = self.shard.now;
        match self.shard.host.deliver(dg, now) {
            Delivery::Delivered {
                socket,
                had_posted_recv,
            } => {
                self.shard.delta.datagrams_delivered += 1;
                if had_posted_recv {
                    self.shard.completions.push(Completion::RecvReady {
                        host,
                        socket,
                        at: now,
                    });
                }
            }
            Delivery::Dropped(DeliveryFailure::BufferOverflow) => {
                self.shard.delta.rx_buffer_drops += 1;
                self.trace_push(TraceEvent::Drop {
                    host,
                    reason: "rx buffer overflow",
                });
            }
            Delivery::Dropped(DeliveryFailure::NoPostedReceive) => {
                self.shard.delta.unposted_recv_drops += 1;
                self.trace_push(TraceEvent::Drop {
                    host,
                    reason: "no posted receive (strict multicast)",
                });
            }
            Delivery::Dropped(DeliveryFailure::NoMatchingSocket) => {}
        }
    }
}
