//! The blocking API a simulated MPI process programs against.
//!
//! Each rank runs on its own OS thread and talks to the simulation driver
//! through a one-slot mailbox: the rank posts a [`Request`] and parks until
//! the driver hands back a [`Response`] stamped with the rank's new local
//! virtual time. The same collective-operation code therefore runs
//! unmodified here and on a real UDP transport — only the handle differs.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::frame::{Datagram, SharedPayload};
use crate::ids::{DatagramDst, GroupId, SocketId, UdpPort};
use crate::time::{SimDuration, SimTime};

/// What a rank asks the driver to do.
#[derive(Debug)]
pub enum Request {
    /// Bind a UDP socket (free: setup-time configuration).
    Bind {
        /// Local port to bind.
        port: UdpPort,
    },
    /// Join a multicast group without IGMP traffic (setup-time).
    JoinQuiet {
        /// Socket joining.
        socket: SocketId,
        /// Group to join.
        group: GroupId,
    },
    /// Leave a multicast group (setup-time).
    LeaveQuiet {
        /// Socket leaving.
        socket: SocketId,
        /// Group to leave.
        group: GroupId,
    },
    /// Join a multicast group with an IGMP membership report on the wire.
    JoinIgmp {
        /// Socket joining.
        socket: SocketId,
        /// Group to join.
        group: GroupId,
    },
    /// Send a datagram (charges `o_send` + per-byte copy, or the cheap
    /// `o_kernel_send` when `kernel` is set).
    Send {
        /// Sending socket.
        socket: SocketId,
        /// Destination host or group.
        dst: DatagramDst,
        /// Destination port.
        dst_port: UdpPort,
        /// Payload bytes (shared segments — never copied by the driver).
        payload: SharedPayload,
        /// Kernel-generated traffic (modelled TCP acks): cheaper host
        /// cost, separate statistics.
        kernel: bool,
    },
    /// Receive the next datagram on `socket`, optionally with a timeout.
    Recv {
        /// Receiving socket.
        socket: SocketId,
        /// Give up after this long, if set.
        timeout: Option<SimDuration>,
    },
    /// Advance the local clock by `dur` (models application computation).
    Compute {
        /// Amount of virtual work.
        dur: SimDuration,
    },
    /// Read the local clock.
    Now,
}

/// What the driver answers.
#[derive(Debug)]
pub enum Response {
    /// Socket created.
    Socket(SocketId),
    /// Operation done (joins, sends, compute); the timestamp is the rank's
    /// new local time.
    Done,
    /// Receive completed: `None` means the timeout elapsed first.
    Datagram(Option<Arc<Datagram>>),
    /// Current local time answer for [`Request::Now`].
    Time,
    /// The run is being torn down (another rank panicked, deadlock, limit);
    /// the handle raises a panic to unwind this rank.
    Aborted,
}

/// Mailbox slot state.
#[derive(Debug)]
pub enum Slot {
    /// Rank is executing application code.
    Idle,
    /// Rank posted a request and is parked.
    Requested(Request),
    /// Driver posted a response; rank is waking.
    Responded(Response, SimTime),
    /// Rank's closure returned (or unwound).
    Finished {
        /// True when the rank exited by panic.
        panicked: bool,
    },
}

/// Shared mailbox between one rank thread and the driver.
pub struct ProcShared {
    /// The slot.
    pub slot: Mutex<Slot>,
    /// Signalled by the rank when it posts a request or finishes.
    pub to_driver: Condvar,
    /// Signalled by the driver when it posts a response.
    pub to_proc: Condvar,
}

impl ProcShared {
    /// Fresh mailbox in the idle state.
    pub fn new() -> Self {
        ProcShared {
            slot: Mutex::new(Slot::Idle),
            to_driver: Condvar::new(),
            to_proc: Condvar::new(),
        }
    }
}

impl Default for ProcShared {
    fn default() -> Self {
        Self::new()
    }
}

/// Marker payload used to unwind a rank thread during simulation teardown.
pub struct AbortUnwind;

/// Handle a rank uses to interact with the simulated network.
///
/// All methods block the calling thread until the driver has advanced
/// virtual time far enough to answer. Local time is monotone per rank and
/// reflects LogP-style software overheads charged by the driver.
pub struct SimProcess {
    pub(crate) shared: Arc<ProcShared>,
    pub(crate) rank: usize,
    pub(crate) local_time: SimTime,
}

impl SimProcess {
    pub(crate) fn new(shared: Arc<ProcShared>, rank: usize, start: SimTime) -> Self {
        SimProcess {
            shared,
            rank,
            local_time: start,
        }
    }

    /// This process's rank (== its simulated host id).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Local virtual time.
    pub fn now(&self) -> SimTime {
        self.local_time
    }

    fn call(&mut self, req: Request) -> Response {
        let mut slot = self.shared.slot.lock();
        debug_assert!(matches!(*slot, Slot::Idle), "re-entrant request");
        *slot = Slot::Requested(req);
        self.shared.to_driver.notify_one();
        loop {
            match &*slot {
                Slot::Responded(..) => break,
                _ => self.shared.to_proc.wait(&mut slot),
            }
        }
        let Slot::Responded(resp, at) = std::mem::replace(&mut *slot, Slot::Idle) else {
            unreachable!("checked above");
        };
        drop(slot);
        self.local_time = at;
        if matches!(resp, Response::Aborted) {
            // Unwind without invoking the panic hook (this is controlled
            // teardown, not a bug in the rank's code).
            std::panic::resume_unwind(Box::new(AbortUnwind));
        }
        resp
    }

    /// Bind a UDP socket on this host (setup-time, free).
    pub fn bind(&mut self, port: u16) -> SocketId {
        match self.call(Request::Bind {
            port: UdpPort(port),
        }) {
            Response::Socket(s) => s,
            other => unreachable!("bad response {other:?}"),
        }
    }

    /// Join `group` on `socket` without emitting IGMP traffic (models a
    /// group set up before the timed region, like an MPI communicator).
    pub fn join_group(&mut self, socket: SocketId, group: GroupId) {
        self.call(Request::JoinQuiet { socket, group });
    }

    /// Leave `group` on `socket` (setup-time, free).
    pub fn leave_group(&mut self, socket: SocketId, group: GroupId) {
        self.call(Request::LeaveQuiet { socket, group });
    }

    /// Join `group` emitting a real IGMP membership report (costs a send
    /// overhead and a frame on the wire).
    pub fn join_group_igmp(&mut self, socket: SocketId, group: GroupId) {
        self.call(Request::JoinIgmp { socket, group });
    }

    /// Send `payload` as one UDP datagram to a unicast or multicast
    /// destination. Returns once the host stack has accepted the datagram
    /// (UDP semantics — no delivery guarantee). Accepts anything
    /// convertible into a [`SharedPayload`] (a `Vec<u8>`, a
    /// `bytes::Bytes`, or pre-built shared segments) — conversion never
    /// copies payload bytes.
    pub fn send(
        &mut self,
        socket: SocketId,
        dst: DatagramDst,
        dst_port: u16,
        payload: impl Into<SharedPayload>,
    ) {
        self.call(Request::Send {
            socket,
            dst,
            dst_port: UdpPort(dst_port),
            payload: payload.into(),
            kernel: false,
        });
    }

    /// Send kernel-generated traffic (e.g. a modelled TCP ack): the frame
    /// occupies the wire like any other, but the host is charged only the
    /// small `o_kernel_send` cost, and statistics count it separately.
    pub fn send_kernel(
        &mut self,
        socket: SocketId,
        dst: DatagramDst,
        dst_port: u16,
        payload: impl Into<SharedPayload>,
    ) {
        self.call(Request::Send {
            socket,
            dst,
            dst_port: UdpPort(dst_port),
            payload: payload.into(),
            kernel: true,
        });
    }

    /// Block until a datagram arrives on `socket`.
    pub fn recv(&mut self, socket: SocketId) -> Arc<Datagram> {
        match self.call(Request::Recv {
            socket,
            timeout: None,
        }) {
            Response::Datagram(Some(d)) => d,
            Response::Datagram(None) => unreachable!("no timeout was set"),
            other => unreachable!("bad response {other:?}"),
        }
    }

    /// Block until a datagram arrives or `timeout` elapses.
    pub fn recv_timeout(
        &mut self,
        socket: SocketId,
        timeout: SimDuration,
    ) -> Option<Arc<Datagram>> {
        match self.call(Request::Recv {
            socket,
            timeout: Some(timeout),
        }) {
            Response::Datagram(d) => d,
            other => unreachable!("bad response {other:?}"),
        }
    }

    /// Model `dur` of local computation.
    pub fn compute(&mut self, dur: SimDuration) {
        self.call(Request::Compute { dur });
    }
}
