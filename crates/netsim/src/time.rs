//! Simulated time.
//!
//! Virtual time is counted in integer nanoseconds from the start of the
//! simulation. Integer nanoseconds keep event ordering exact and make every
//! run bit-reproducible; at 100 Mbps one byte takes 80 ns, so nanosecond
//! resolution is comfortably finer than anything the model distinguishes.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch, as a float (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_micros(5);
        let d = SimDuration::from_nanos(250);
        assert_eq!((t + d).as_nanos(), 5_250);
        assert_eq!(((t + d) - t).as_nanos(), 250);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_nanos(), 10);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn mul_div() {
        let d = SimDuration::from_nanos(80);
        assert_eq!((d * 1500).as_nanos(), 120_000);
        assert_eq!((d / 2).as_nanos(), 40);
    }

    #[test]
    fn max_picks_later() {
        let a = SimTime::from_nanos(7);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
