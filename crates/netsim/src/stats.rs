//! Counters collected while a simulation runs.
//!
//! The integration tests use these to check the paper's analytic frame
//! counts (e.g. a binomial broadcast of M bytes to N processes must put
//! exactly `(floor(M/T)+1)(N-1)` data frames on the wire), and the benches
//! report them alongside latency. Fault injection adds a second family of
//! counters: aggregate duplicate/reorder/partition tallies plus a
//! [`LinkStats`] row per receiving link, so a loss sweep can show *where*
//! the injected faults landed, not just how many there were.

use crate::ids::HostId;

/// Per-receiving-link fault and delivery counters (one row per host; the
/// link is the host's drop from the fabric — a switch port or hub tap).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames handed to this host's NIC filter (after surviving faults).
    pub frames_delivered: u64,
    /// Frames lost to the injected per-link drop probability.
    pub injected_drops: u64,
    /// Extra copies delivered by injected duplication.
    pub injected_dups: u64,
    /// Frames delayed by injected reordering.
    pub injected_reorders: u64,
    /// Frames held back by this link's heterogeneous extra delay.
    pub delayed_frames: u64,
    /// Frames dropped because a partition separated sender and receiver.
    pub partition_drops: u64,
    /// Completed `mcast-mpi` Data chunks that crossed this link (zero
    /// unless [`crate::params::NetParams::track_payload_crossings`] is
    /// on). Counts every crossing, including repeats.
    pub data_chunks_delivered: u64,
    /// Of those, crossings of a chunk that had already crossed this link
    /// — the gossip plane's "no payload crosses a link twice" invariant
    /// holds exactly when this stays zero on every link.
    pub duplicate_data_chunks: u64,
}

/// Classification of a transmitted frame for statistics purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameClass {
    /// Fragment of an application datagram.
    Data,
    /// Fragment of kernel-generated (TCP-ack-model) traffic.
    KernelAck,
    /// Control traffic (IGMP).
    Control,
}

/// Aggregate network statistics for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Frames that finished transmission onto the fabric.
    pub frames_sent: u64,
    /// Of those, frames carrying application datagram fragments (vs IGMP
    /// control or kernel-generated ack traffic).
    pub data_frames_sent: u64,
    /// Frames carrying kernel-generated (ack-model) traffic.
    pub ack_frames_sent: u64,
    /// Kernel-generated datagrams injected (TCP-ack model).
    pub kernel_datagrams_sent: u64,
    /// Total MAC-payload bytes of sent frames (before min-frame padding).
    pub payload_bytes_sent: u64,
    /// Total wire-occupancy bytes including preamble/header/padding/FCS.
    pub wire_bytes_sent: u64,
    /// CSMA/CD collision events on the hub.
    pub collisions: u64,
    /// Frames abandoned after exceeding the attempt limit.
    pub excessive_collision_drops: u64,
    /// Frames dropped by a full switch output-port buffer.
    pub switch_buffer_drops: u64,
    /// Multicast frames suppressed by the switch's `unicast_only` fabric
    /// mode (a network with no multicast routing; see
    /// [`crate::params::SwitchParams::unicast_only`]). Counted once per
    /// frame, not per would-be output port.
    pub unicast_only_drops: u64,
    /// Datagrams dropped because a socket receive buffer was full.
    pub rx_buffer_drops: u64,
    /// Datagrams dropped by strict posted-receive mode (no receive posted).
    pub unposted_recv_drops: u64,
    /// Frames lost to injected wire-level loss.
    pub injected_frame_losses: u64,
    /// Extra frame copies delivered by injected duplication.
    pub injected_duplicates: u64,
    /// Frames delayed by injected reordering.
    pub injected_reorders: u64,
    /// Frames held back by heterogeneous per-link extra delay.
    pub link_delayed_frames: u64,
    /// Frames dropped by an active partition.
    pub partition_drops: u64,
    /// Frames dropped on arrival at a crashed host (the
    /// [`crate::topology::TopologyOp::Crash`] primitive).
    pub crashed_frames: u64,
    /// Frames parked by a topology-script hold (released later, not
    /// dropped — so this is *not* part of [`NetStats::total_drops`]).
    pub frames_held: u64,
    /// Held frames re-delivered by a release or heal. Equal to
    /// `frames_held` once every hold has been released.
    pub frames_released: u64,
    /// Datagrams fully reassembled and delivered to a socket.
    pub datagrams_delivered: u64,
    /// Datagram sends issued by hosts.
    pub datagrams_sent: u64,
    /// Of the application datagrams sent, those addressed to a multicast
    /// group — one send fanning out to every member. The repair scale-out
    /// work (multicast NACKs, multicast retransmissions) shows up here:
    /// repair traffic shifts from the unicast to the multicast column.
    pub mcast_datagrams_sent: u64,
    /// Application datagrams addressed to a single host.
    pub unicast_datagrams_sent: u64,
    /// Per-host frame transmit counts (indexed by host id).
    pub frames_per_host: Vec<u64>,
    /// Per-receiving-link delivery/fault counters (indexed by host id).
    pub links: Vec<LinkStats>,
}

impl NetStats {
    /// Create stats sized for `n` hosts.
    pub fn new(n: usize) -> Self {
        NetStats {
            frames_per_host: vec![0; n],
            links: vec![LinkStats::default(); n],
            ..Default::default()
        }
    }

    /// The [`LinkStats`] row for `host`'s receiving link.
    pub fn link_mut(&mut self, host: HostId) -> &mut LinkStats {
        &mut self.links[host.index()]
    }

    /// Record a completed frame transmission. `class` distinguishes
    /// application data, kernel ack-model traffic, and control frames.
    pub fn record_frame_sent(
        &mut self,
        src: HostId,
        mac_payload: u32,
        wire_bytes: u64,
        class: FrameClass,
    ) {
        self.frames_sent += 1;
        match class {
            FrameClass::Data => self.data_frames_sent += 1,
            FrameClass::KernelAck => self.ack_frames_sent += 1,
            FrameClass::Control => {}
        }
        self.payload_bytes_sent += mac_payload as u64;
        self.wire_bytes_sent += wire_bytes;
        if let Some(c) = self.frames_per_host.get_mut(src.index()) {
            *c += 1;
        }
    }

    /// Sum of all drop counters — nonzero means the run lost traffic.
    pub fn total_drops(&self) -> u64 {
        self.excessive_collision_drops
            + self.switch_buffer_drops
            + self.unicast_only_drops
            + self.rx_buffer_drops
            + self.unposted_recv_drops
            + self.injected_frame_losses
            + self.partition_drops
            + self.crashed_frames
    }

    /// Reset every counter (e.g. after a warm-up phase), keeping sizing.
    pub fn reset(&mut self) {
        let n = self.frames_per_host.len();
        *self = NetStats::new(n);
    }

    /// Accumulate another run's counters (e.g. summing an experiment's
    /// trials). Host-indexed vectors are added rowwise; a size mismatch
    /// (different cluster sizes) panics rather than mis-attributing.
    pub fn merge(&mut self, other: &NetStats) {
        assert_eq!(
            self.frames_per_host.len(),
            other.frames_per_host.len(),
            "merging stats of different cluster sizes"
        );
        self.frames_sent += other.frames_sent;
        self.data_frames_sent += other.data_frames_sent;
        self.ack_frames_sent += other.ack_frames_sent;
        self.kernel_datagrams_sent += other.kernel_datagrams_sent;
        self.payload_bytes_sent += other.payload_bytes_sent;
        self.wire_bytes_sent += other.wire_bytes_sent;
        self.collisions += other.collisions;
        self.excessive_collision_drops += other.excessive_collision_drops;
        self.switch_buffer_drops += other.switch_buffer_drops;
        self.unicast_only_drops += other.unicast_only_drops;
        self.rx_buffer_drops += other.rx_buffer_drops;
        self.unposted_recv_drops += other.unposted_recv_drops;
        self.injected_frame_losses += other.injected_frame_losses;
        self.injected_duplicates += other.injected_duplicates;
        self.injected_reorders += other.injected_reorders;
        self.link_delayed_frames += other.link_delayed_frames;
        self.partition_drops += other.partition_drops;
        self.crashed_frames += other.crashed_frames;
        self.frames_held += other.frames_held;
        self.frames_released += other.frames_released;
        self.datagrams_delivered += other.datagrams_delivered;
        self.datagrams_sent += other.datagrams_sent;
        self.mcast_datagrams_sent += other.mcast_datagrams_sent;
        self.unicast_datagrams_sent += other.unicast_datagrams_sent;
        for (a, b) in self.frames_per_host.iter_mut().zip(&other.frames_per_host) {
            *a += b;
        }
        for (a, b) in self.links.iter_mut().zip(&other.links) {
            a.frames_delivered += b.frames_delivered;
            a.injected_drops += b.injected_drops;
            a.injected_dups += b.injected_dups;
            a.injected_reorders += b.injected_reorders;
            a.delayed_frames += b.delayed_frames;
            a.partition_drops += b.partition_drops;
            a.data_chunks_delivered += b.data_chunks_delivered;
            a.duplicate_data_chunks += b.duplicate_data_chunks;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_reset() {
        let mut s = NetStats::new(3);
        s.record_frame_sent(HostId(1), 100, 144, FrameClass::Data);
        s.record_frame_sent(HostId(1), 46, 72, FrameClass::Control);
        s.record_frame_sent(HostId(1), 46, 72, FrameClass::KernelAck);
        assert_eq!(s.frames_sent, 3);
        assert_eq!(s.data_frames_sent, 1);
        assert_eq!(s.ack_frames_sent, 1);
        assert_eq!(s.payload_bytes_sent, 192);
        assert_eq!(s.wire_bytes_sent, 288);
        assert_eq!(s.frames_per_host, vec![0, 3, 0]);
        s.reset();
        assert_eq!(s.frames_sent, 0);
        assert_eq!(s.frames_per_host, vec![0, 0, 0]);
    }

    #[test]
    fn total_drops_sums_all_causes() {
        let s = NetStats {
            excessive_collision_drops: 1,
            switch_buffer_drops: 2,
            rx_buffer_drops: 3,
            unposted_recv_drops: 4,
            injected_frame_losses: 5,
            partition_drops: 6,
            crashed_frames: 7,
            ..NetStats::new(1)
        };
        assert_eq!(s.total_drops(), 28);
    }

    #[test]
    fn merge_sums_counters_and_rows() {
        let mut a = NetStats::new(2);
        a.record_frame_sent(HostId(0), 100, 144, FrameClass::Data);
        a.link_mut(HostId(1)).injected_drops = 2;
        a.mcast_datagrams_sent = 4;
        let mut b = NetStats::new(2);
        b.record_frame_sent(HostId(1), 50, 72, FrameClass::Data);
        b.injected_frame_losses = 3;
        b.link_mut(HostId(1)).injected_drops = 1;
        b.mcast_datagrams_sent = 1;
        b.unicast_datagrams_sent = 2;
        a.merge(&b);
        assert_eq!(a.frames_sent, 2);
        assert_eq!(a.injected_frame_losses, 3);
        assert_eq!(a.frames_per_host, vec![1, 1]);
        assert_eq!(a.links[1].injected_drops, 3);
        assert_eq!(a.mcast_datagrams_sent, 5);
        assert_eq!(a.unicast_datagrams_sent, 2);
    }

    #[test]
    fn link_rows_sized_and_reset() {
        let mut s = NetStats::new(3);
        assert_eq!(s.links.len(), 3);
        s.link_mut(HostId(2)).injected_drops = 7;
        s.reset();
        assert_eq!(s.links[2], LinkStats::default());
    }
}
