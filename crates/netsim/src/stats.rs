//! Counters collected while a simulation runs.
//!
//! The integration tests use these to check the paper's analytic frame
//! counts (e.g. a binomial broadcast of M bytes to N processes must put
//! exactly `(floor(M/T)+1)(N-1)` data frames on the wire), and the benches
//! report them alongside latency.

use crate::ids::HostId;

/// Classification of a transmitted frame for statistics purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameClass {
    /// Fragment of an application datagram.
    Data,
    /// Fragment of kernel-generated (TCP-ack-model) traffic.
    KernelAck,
    /// Control traffic (IGMP).
    Control,
}

/// Aggregate network statistics for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Frames that finished transmission onto the fabric.
    pub frames_sent: u64,
    /// Of those, frames carrying application datagram fragments (vs IGMP
    /// control or kernel-generated ack traffic).
    pub data_frames_sent: u64,
    /// Frames carrying kernel-generated (ack-model) traffic.
    pub ack_frames_sent: u64,
    /// Kernel-generated datagrams injected (TCP-ack model).
    pub kernel_datagrams_sent: u64,
    /// Total MAC-payload bytes of sent frames (before min-frame padding).
    pub payload_bytes_sent: u64,
    /// Total wire-occupancy bytes including preamble/header/padding/FCS.
    pub wire_bytes_sent: u64,
    /// CSMA/CD collision events on the hub.
    pub collisions: u64,
    /// Frames abandoned after exceeding the attempt limit.
    pub excessive_collision_drops: u64,
    /// Frames dropped by a full switch output-port buffer.
    pub switch_buffer_drops: u64,
    /// Datagrams dropped because a socket receive buffer was full.
    pub rx_buffer_drops: u64,
    /// Datagrams dropped by strict posted-receive mode (no receive posted).
    pub unposted_recv_drops: u64,
    /// Frames lost to injected wire-level loss.
    pub injected_frame_losses: u64,
    /// Datagrams fully reassembled and delivered to a socket.
    pub datagrams_delivered: u64,
    /// Datagram sends issued by hosts.
    pub datagrams_sent: u64,
    /// Per-host frame transmit counts (indexed by host id).
    pub frames_per_host: Vec<u64>,
}

impl NetStats {
    /// Create stats sized for `n` hosts.
    pub fn new(n: usize) -> Self {
        NetStats {
            frames_per_host: vec![0; n],
            ..Default::default()
        }
    }

    /// Record a completed frame transmission. `class` distinguishes
    /// application data, kernel ack-model traffic, and control frames.
    pub fn record_frame_sent(
        &mut self,
        src: HostId,
        mac_payload: u32,
        wire_bytes: u64,
        class: FrameClass,
    ) {
        self.frames_sent += 1;
        match class {
            FrameClass::Data => self.data_frames_sent += 1,
            FrameClass::KernelAck => self.ack_frames_sent += 1,
            FrameClass::Control => {}
        }
        self.payload_bytes_sent += mac_payload as u64;
        self.wire_bytes_sent += wire_bytes;
        if let Some(c) = self.frames_per_host.get_mut(src.index()) {
            *c += 1;
        }
    }

    /// Sum of all drop counters — nonzero means the run lost traffic.
    pub fn total_drops(&self) -> u64 {
        self.excessive_collision_drops
            + self.switch_buffer_drops
            + self.rx_buffer_drops
            + self.unposted_recv_drops
            + self.injected_frame_losses
    }

    /// Reset every counter (e.g. after a warm-up phase), keeping sizing.
    pub fn reset(&mut self) {
        let n = self.frames_per_host.len();
        *self = NetStats::new(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_reset() {
        let mut s = NetStats::new(3);
        s.record_frame_sent(HostId(1), 100, 144, FrameClass::Data);
        s.record_frame_sent(HostId(1), 46, 72, FrameClass::Control);
        s.record_frame_sent(HostId(1), 46, 72, FrameClass::KernelAck);
        assert_eq!(s.frames_sent, 3);
        assert_eq!(s.data_frames_sent, 1);
        assert_eq!(s.ack_frames_sent, 1);
        assert_eq!(s.payload_bytes_sent, 192);
        assert_eq!(s.wire_bytes_sent, 288);
        assert_eq!(s.frames_per_host, vec![0, 3, 0]);
        s.reset();
        assert_eq!(s.frames_sent, 0);
        assert_eq!(s.frames_per_host, vec![0, 0, 0]);
    }

    #[test]
    fn total_drops_sums_all_causes() {
        let s = NetStats {
            excessive_collision_drops: 1,
            switch_buffer_drops: 2,
            rx_buffer_drops: 3,
            unposted_recv_drops: 4,
            injected_frame_losses: 5,
            ..NetStats::new(1)
        };
        assert_eq!(s.total_drops(), 15);
    }
}
