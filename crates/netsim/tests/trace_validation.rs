//! Use the event trace to validate fine-grained model behaviour that the
//! aggregate statistics cannot distinguish.

use mmpi_netsim::ids::{DatagramDst, GroupId, HostId};
use mmpi_netsim::params::NetParams;
use mmpi_netsim::time::SimTime;
use mmpi_netsim::trace::TraceEvent;
use mmpi_netsim::world::{StepOutcome, World};

const PORT: mmpi_netsim::UdpPort = mmpi_netsim::UdpPort(4000);

fn drain(world: &mut World) {
    while !matches!(world.step(), StepOutcome::Quiescent) {}
}

#[test]
fn hub_collision_appears_in_trace_with_both_stations() {
    let mut world = World::new(3, NetParams::fast_ethernet_hub(), 1);
    world.enable_trace(128);
    for h in 0..3u32 {
        world.bind(HostId(h), PORT);
    }
    // Hosts 1 and 2 inject at the same instant: guaranteed collision.
    let at = SimTime::from_micros(10);
    for h in [1u32, 2] {
        world.send_datagram(
            HostId(h),
            PORT,
            DatagramDst::Unicast(HostId(0)),
            PORT,
            vec![h as u8; 100].into(),
            at,
            false,
            false,
        );
    }
    drain(&mut world);
    let trace = world.trace().unwrap();
    let collisions: Vec<_> = trace
        .records()
        .filter_map(|(_, e)| match e {
            TraceEvent::Collision { stations } => Some(stations.clone()),
            _ => None,
        })
        .collect();
    assert!(!collisions.is_empty(), "simultaneous senders must collide");
    assert_eq!(collisions[0], vec![HostId(1), HostId(2)]);
    // Both frames still arrive: one TxStart + one Delivered per frame.
    assert_eq!(trace.count(|e| matches!(e, TraceEvent::TxStart { .. })), 2);
    assert_eq!(
        trace.count(|e| matches!(e, TraceEvent::Delivered { .. })),
        2
    );
    assert_eq!(world.stats().datagrams_delivered, 2);
}

#[test]
fn hub_backoff_separates_retransmissions_in_time() {
    let mut world = World::new(2, NetParams::fast_ethernet_hub(), 7);
    world.enable_trace(256);
    for h in 0..2u32 {
        world.bind(HostId(h), PORT);
    }
    // Both ends of a 2-host hub transmit simultaneously.
    let at = SimTime::from_micros(5);
    world.send_datagram(
        HostId(0),
        PORT,
        DatagramDst::Unicast(HostId(1)),
        PORT,
        vec![0; 50].into(),
        at,
        false,
        false,
    );
    world.send_datagram(
        HostId(1),
        PORT,
        DatagramDst::Unicast(HostId(0)),
        PORT,
        vec![1; 50].into(),
        at,
        false,
        false,
    );
    drain(&mut world);
    let trace = world.trace().unwrap();
    let tx_times: Vec<SimTime> = trace
        .records()
        .filter_map(|(t, e)| matches!(e, TraceEvent::TxStart { .. }).then_some(*t))
        .collect();
    assert_eq!(tx_times.len(), 2);
    // After the collision+jam, the two transmissions must be separated by
    // at least the first frame's wire time (they won the medium serially).
    let gap = tx_times[1] - tx_times[0];
    let slot = world.params().ethernet.slot_time;
    assert!(
        gap >= world.params().ethernet.frame_wire_time(78),
        "serialized transmissions, gap {gap}"
    );
    // And the first transmission cannot precede the jam's end.
    assert!(
        tx_times[0] >= at + slot,
        "first tx after jam, got {}",
        tx_times[0]
    );
}

#[test]
fn strict_mode_drop_reason_is_traced() {
    let mut params = NetParams::fast_ethernet_switch();
    params.host.strict_posted_recv = true;
    let mut world = World::new(2, params, 3);
    world.enable_trace(64);
    let s0 = world.bind(HostId(0), PORT);
    let s1 = world.bind(HostId(1), PORT);
    world.join_group_quiet(HostId(0), s0, GroupId(1));
    world.join_group_quiet(HostId(1), s1, GroupId(1));
    world.send_datagram(
        HostId(0),
        PORT,
        DatagramDst::Multicast(GroupId(1)),
        PORT,
        vec![9; 100].into(),
        SimTime::from_micros(1),
        false,
        false,
    );
    drain(&mut world);
    let trace = world.trace().unwrap();
    assert_eq!(
        trace.count(|e| matches!(
            e,
            TraceEvent::Drop {
                reason: "no posted receive (strict multicast)",
                ..
            }
        )),
        1
    );
    let rendered = trace.to_string();
    assert!(rendered.contains("DROP"));
}

#[test]
fn trace_capacity_is_respected_under_load() {
    let mut world = World::new(2, NetParams::fast_ethernet_switch(), 5);
    world.enable_trace(8);
    world.bind(HostId(0), PORT);
    world.bind(HostId(1), PORT);
    for i in 0..20u64 {
        world.send_datagram(
            HostId(0),
            PORT,
            DatagramDst::Unicast(HostId(1)),
            PORT,
            vec![0; 10].into(),
            SimTime::from_micros(1 + i * 200),
            false,
            false,
        );
    }
    drain(&mut world);
    let trace = world.trace().unwrap();
    assert_eq!(trace.len(), 8);
    assert!(trace.evicted() > 0);
}
