//! End-to-end behaviour of the simulator: timing sanity, determinism,
//! collision dynamics, loss models, and failure reporting.

use mmpi_netsim::cluster::{run_cluster, ClusterConfig, RunReport};
use mmpi_netsim::ids::{DatagramDst, GroupId, HostId};
use mmpi_netsim::params::{FabricKind, NetParams};
use mmpi_netsim::time::{SimDuration, SimTime};
use mmpi_netsim::SimError;

const PORT: u16 = 5000;
const GROUP: GroupId = GroupId(1);

fn ping_pong(params: NetParams, payload: usize) -> RunReport<()> {
    let cfg = ClusterConfig::new(2, params, 1);
    run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        if p.rank() == 0 {
            p.send(s, DatagramDst::Unicast(HostId(1)), PORT, vec![1; payload]);
            let d = p.recv(s);
            assert_eq!(d.payload.len(), payload);
        } else {
            let d = p.recv(s);
            p.send(s, DatagramDst::Unicast(HostId(0)), PORT, d.payload.clone());
        }
    })
    .unwrap()
}

#[test]
fn ping_pong_round_trip_time_is_plausible() {
    // 0-byte payload over the switch: two messages, each roughly
    // o_send (55us) + wire (~6us) + switch (10us) + wire + o_recv (50us).
    let report = ping_pong(NetParams::fast_ethernet_switch(), 0);
    let rtt = report.makespan.as_micros_f64();
    assert!(rtt > 150.0, "RTT {rtt}us implausibly fast");
    assert!(rtt < 1000.0, "RTT {rtt}us implausibly slow");
}

#[test]
fn hub_is_faster_than_switch_for_a_single_message() {
    // With no contention the hub has no forwarding latency and only one
    // serialization, so it must beat the store-and-forward switch.
    let hub = ping_pong(NetParams::fast_ethernet_hub(), 1000).makespan;
    let sw = ping_pong(NetParams::fast_ethernet_switch(), 1000).makespan;
    assert!(
        hub < sw,
        "hub {hub} should beat switch {sw} without contention"
    );
}

#[test]
fn payload_size_increases_latency() {
    let small = ping_pong(NetParams::fast_ethernet_switch(), 10).makespan;
    let large = ping_pong(NetParams::fast_ethernet_switch(), 5000).makespan;
    assert!(large > small);
}

#[test]
fn fragmentation_counts_match_paper_formula() {
    for (bytes, frames) in [(0u32, 1u64), (1000, 1), (2000, 2), (5000, 4)] {
        let cfg = ClusterConfig::new(2, NetParams::fast_ethernet_switch(), 3);
        let report = run_cluster(&cfg, move |mut p| {
            let s = p.bind(PORT);
            if p.rank() == 0 {
                p.send(
                    s,
                    DatagramDst::Unicast(HostId(1)),
                    PORT,
                    vec![0; bytes as usize],
                );
            } else {
                p.recv(s);
            }
        })
        .unwrap();
        assert_eq!(
            report.stats.data_frames_sent, frames,
            "M={bytes} should need {frames} frames (paper: floor(M/T)+1)"
        );
    }
}

#[test]
fn identical_seeds_are_bit_identical() {
    let run = |seed| {
        let cfg = ClusterConfig::new(5, NetParams::fast_ethernet_hub(), seed)
            .with_start_skew(SimDuration::from_micros(50));
        run_cluster(&cfg, |mut p| {
            let s = p.bind(PORT);
            p.join_group(s, GROUP);
            if p.rank() == 0 {
                // Everyone scouts to 0, then 0 multicasts.
                for _ in 0..4 {
                    p.recv(s);
                }
                p.send(s, DatagramDst::Multicast(GROUP), PORT, vec![9; 2000]);
            } else {
                p.send(s, DatagramDst::Unicast(HostId(0)), PORT, vec![]);
                p.recv(s);
            }
            p.now()
        })
        .unwrap()
    };
    let a = run(77);
    let b = run(77);
    let c = run(78);
    assert_eq!(a.completion_times, b.completion_times);
    assert_eq!(a.stats.frames_sent, b.stats.frames_sent);
    assert_eq!(a.stats.collisions, b.stats.collisions);
    // A different seed shifts skews, so times should differ somewhere.
    assert_ne!(a.completion_times, c.completion_times);
}

#[test]
fn simultaneous_hub_senders_collide_and_all_deliver() {
    // All ranks send to rank 0 at t=0 on the hub: a collision storm the
    // backoff must resolve, with every message eventually delivered.
    let cfg = ClusterConfig::new(6, NetParams::fast_ethernet_hub(), 11);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        if p.rank() == 0 {
            for _ in 0..5 {
                p.recv(s);
            }
        } else {
            p.send(
                s,
                DatagramDst::Unicast(HostId(0)),
                PORT,
                vec![p.rank() as u8],
            );
        }
    })
    .unwrap();
    assert!(
        report.stats.collisions > 0,
        "five synchronized senders must collide at least once"
    );
    assert_eq!(report.stats.datagrams_delivered, 5);
    assert_eq!(report.stats.total_drops(), 0);
}

#[test]
fn switch_has_no_collisions() {
    let cfg = ClusterConfig::new(6, NetParams::fast_ethernet_switch(), 11);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        if p.rank() == 0 {
            for _ in 0..5 {
                p.recv(s);
            }
        } else {
            p.send(
                s,
                DatagramDst::Unicast(HostId(0)),
                PORT,
                vec![p.rank() as u8],
            );
        }
    })
    .unwrap();
    assert_eq!(report.stats.collisions, 0);
    assert_eq!(report.stats.datagrams_delivered, 5);
    assert_eq!(report.stats.unicast_datagrams_sent, 5);
    assert_eq!(report.stats.mcast_datagrams_sent, 0);
}

#[test]
fn multicast_on_switch_reaches_only_members() {
    let cfg = ClusterConfig::new(4, NetParams::fast_ethernet_switch(), 5);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        // Only ranks 1 and 2 join; rank 3 must not receive.
        if p.rank() == 1 || p.rank() == 2 {
            p.join_group(s, GROUP);
        }
        match p.rank() {
            0 => {
                p.send(s, DatagramDst::Multicast(GROUP), PORT, vec![5; 100]);
                0
            }
            1 | 2 => p.recv(s).payload.len(),
            _ => p
                .recv_timeout(s, SimDuration::from_millis(5))
                .map(|d| d.payload.len())
                .unwrap_or(0),
        }
    })
    .unwrap();
    assert_eq!(report.outputs, vec![0, 100, 100, 0]);
    // Exactly two copies left the switch (one per member port).
    assert_eq!(report.stats.datagrams_delivered, 2);
    // The fan-out classification: one multicast send, no unicasts.
    assert_eq!(report.stats.mcast_datagrams_sent, 1);
    assert_eq!(report.stats.unicast_datagrams_sent, 0);
}

#[test]
fn strict_posted_recv_loses_unsynchronized_multicast() {
    // The paper's §1 failure mode: without scout synchronization, a
    // receiver that has not posted its receive loses the datagram.
    let mut params = NetParams::fast_ethernet_switch();
    params.host.strict_posted_recv = true;
    let cfg = ClusterConfig::new(2, params, 9);
    let result = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        p.join_group(s, GROUP);
        if p.rank() == 0 {
            p.send(s, DatagramDst::Multicast(GROUP), PORT, vec![1; 64]);
        } else {
            // Simulate a slow receiver: compute for 10 ms before receiving.
            p.compute(SimDuration::from_millis(10));
            assert!(
                p.recv_timeout(s, SimDuration::from_millis(20)).is_none(),
                "datagram should have been lost"
            );
        }
    });
    let report = result.unwrap();
    assert_eq!(report.stats.unposted_recv_drops, 1);
}

#[test]
fn rx_buffer_overflow_drops_excess_datagrams() {
    let mut params = NetParams::fast_ethernet_switch();
    params.host.rx_buffer_bytes = 3000;
    let cfg = ClusterConfig::new(2, params, 10);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        if p.rank() == 0 {
            // Blast ten 1 kB datagrams at a receiver that never reads.
            for _ in 0..10 {
                p.send(s, DatagramDst::Unicast(HostId(1)), PORT, vec![0; 1000]);
            }
        } else {
            p.compute(SimDuration::from_millis(50));
        }
    })
    .unwrap();
    assert!(report.stats.rx_buffer_drops >= 7, "only ~3 kB fits");
    assert_eq!(
        report.stats.rx_buffer_drops + report.stats.datagrams_delivered,
        10
    );
}

#[test]
fn deadlock_is_detected_and_reported() {
    let cfg = ClusterConfig::new(2, NetParams::fast_ethernet_switch(), 1);
    let err = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        // Everyone receives, nobody sends.
        p.recv(s);
    })
    .unwrap_err();
    match err {
        SimError::Deadlock { detail, .. } => {
            assert!(detail.contains("rank 0"));
            assert!(detail.contains("rank 1"));
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn rank_panic_aborts_cleanly() {
    let cfg = ClusterConfig::new(3, NetParams::fast_ethernet_switch(), 1);
    let err = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        if p.rank() == 2 {
            panic!("boom");
        }
        p.recv(s);
    })
    .unwrap_err();
    assert!(matches!(err, SimError::RankPanicked { rank: 2, .. }));
}

#[test]
fn recv_timeout_fires_when_nothing_arrives() {
    let cfg = ClusterConfig::new(1, NetParams::fast_ethernet_switch(), 1);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        let before = p.now();
        let got = p.recv_timeout(s, SimDuration::from_micros(500));
        assert!(got.is_none());
        (p.now() - before).as_nanos()
    })
    .unwrap();
    assert_eq!(report.outputs[0], 500_000);
}

#[test]
fn self_send_uses_loopback_not_wire() {
    let cfg = ClusterConfig::new(1, NetParams::fast_ethernet_switch(), 1);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        p.send(s, DatagramDst::Unicast(HostId(0)), PORT, vec![1, 2, 3]);
        p.recv(s).payload.clone()
    })
    .unwrap();
    assert_eq!(report.outputs[0].to_vec(), vec![1, 2, 3]);
    assert_eq!(report.stats.frames_sent, 0, "loopback bypasses the wire");
}

#[test]
fn injected_frame_loss_drops_traffic() {
    let mut params = NetParams::fast_ethernet_switch();
    params.frame_loss_prob = 1.0;
    let cfg = ClusterConfig::new(2, params, 1);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        if p.rank() == 0 {
            p.send(s, DatagramDst::Unicast(HostId(1)), PORT, vec![0; 100]);
        } else {
            assert!(p.recv_timeout(s, SimDuration::from_millis(5)).is_none());
        }
    })
    .unwrap();
    assert_eq!(report.stats.injected_frame_losses, 1);
    assert_eq!(report.stats.datagrams_delivered, 0);
}

#[test]
fn makespan_is_max_completion_time() {
    let cfg = ClusterConfig::new(3, NetParams::fast_ethernet_switch(), 1);
    let report = run_cluster(&cfg, |mut p| {
        p.compute(SimDuration::from_micros(100 * (p.rank() as u64 + 1)));
    })
    .unwrap();
    assert_eq!(report.makespan, SimTime::from_micros(300));
    assert_eq!(report.completion_times.len(), 3);
    assert!(report
        .completion_times
        .iter()
        .all(|t| *t <= report.makespan));
}

#[test]
fn hub_fabric_delivers_multicast_without_switch_tables() {
    // On the hub multicast is physically broadcast; the NIC filter decides.
    let cfg = ClusterConfig::new(3, NetParams::fast_ethernet_hub(), 2);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        if p.rank() != 2 {
            p.join_group(s, GROUP);
        }
        match p.rank() {
            0 => {
                p.send(s, DatagramDst::Multicast(GROUP), PORT, vec![1; 300]);
                true
            }
            1 => p.recv(s).payload.len() == 300,
            _ => p.recv_timeout(s, SimDuration::from_millis(5)).is_none(),
        }
    })
    .unwrap();
    assert_eq!(report.outputs, vec![true, true, true]);
}

#[test]
fn runtime_igmp_join_registers_with_switch() {
    let params = NetParams::fast_ethernet_switch();
    assert!(matches!(params.fabric, FabricKind::Switch(_)));
    let cfg = ClusterConfig::new(2, params, 2);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        if p.rank() == 1 {
            // Join at runtime via IGMP, then tell rank 0 we are ready.
            p.join_group_igmp(s, GROUP);
            p.send(s, DatagramDst::Unicast(HostId(0)), PORT, vec![]);
            p.recv(s).payload.len()
        } else {
            p.recv(s); // wait for join notification
            p.send(s, DatagramDst::Multicast(GROUP), PORT, vec![3; 200]);
            0
        }
    })
    .unwrap();
    assert_eq!(report.outputs[1], 200);
}
