//! Property-based tests of simulator invariants: determinism, datagram
//! conservation, clock monotonicity, and collision-free switching — for
//! randomized cluster sizes, payloads, fabrics, and seeds.

use proptest::prelude::*;

use mmpi_netsim::cluster::{run_cluster, ClusterConfig};
use mmpi_netsim::ids::{DatagramDst, GroupId, HostId};
use mmpi_netsim::params::NetParams;
use mmpi_netsim::time::SimDuration;

const PORT: u16 = 6000;

#[derive(Clone, Debug)]
struct Scenario {
    n: usize,
    hub: bool,
    seed: u64,
    skew_us: u64,
    payloads: Vec<u16>, // one message per non-root rank, sent to rank 0
    mcast_bytes: u16,   // rank 0 multicasts back
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2usize..8, any::<bool>(), any::<u64>(), 0u64..200).prop_flat_map(|(n, hub, seed, skew_us)| {
        (proptest::collection::vec(0u16..5000, n - 1), 0u16..5000).prop_map(
            move |(payloads, mcast_bytes)| Scenario {
                n,
                hub,
                seed,
                skew_us,
                payloads,
                mcast_bytes,
            },
        )
    })
}

/// All-to-root gather followed by a multicast release; returns the report.
fn run(s: &Scenario) -> mmpi_netsim::RunReport<usize> {
    let params = if s.hub {
        NetParams::fast_ethernet_hub()
    } else {
        NetParams::fast_ethernet_switch()
    };
    let payloads = s.payloads.clone();
    let mcast_bytes = s.mcast_bytes as usize;
    let n = s.n;
    let cfg =
        ClusterConfig::new(n, params, s.seed).with_start_skew(SimDuration::from_micros(s.skew_us));
    run_cluster(&cfg, move |mut p| {
        let sock = p.bind(PORT);
        p.join_group(sock, GroupId(1));
        if p.rank() == 0 {
            let mut got = 0;
            for _ in 1..n {
                let d = p.recv(sock);
                got += d.payload.len();
            }
            p.send(
                sock,
                DatagramDst::Multicast(GroupId(1)),
                PORT,
                vec![7; mcast_bytes],
            );
            got
        } else {
            let mine = payloads[p.rank() - 1] as usize;
            p.send(sock, DatagramDst::Unicast(HostId(0)), PORT, vec![1; mine]);
            p.recv(sock).payload.len()
        }
    })
    .expect("scenario must not deadlock")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn determinism_and_conservation(s in scenario()) {
        let a = run(&s);
        let b = run(&s);

        // Bit-identical replay.
        prop_assert_eq!(&a.completion_times, &b.completion_times);
        prop_assert_eq!(a.stats.frames_sent, b.stats.frames_sent);
        prop_assert_eq!(a.stats.collisions, b.stats.collisions);

        // Every rank got what it should.
        let expected_root: usize = s.payloads.iter().map(|&p| p as usize).sum();
        prop_assert_eq!(a.outputs[0], expected_root);
        for r in 1..s.n {
            prop_assert_eq!(a.outputs[r], s.mcast_bytes as usize);
        }

        // Datagram conservation: the (N-1) unicasts are delivered once
        // each; the multicast fans out to N-1 receivers. Nothing dropped.
        prop_assert_eq!(a.stats.total_drops(), 0);
        prop_assert_eq!(
            a.stats.datagrams_delivered,
            (s.n as u64 - 1) * 2
        );

        // Clocks are plausible: completion at/after the skewed start.
        let makespan = a.makespan;
        for t in &a.completion_times {
            prop_assert!(*t <= makespan);
        }

        // The switch never collides; the hub may.
        if !s.hub {
            prop_assert_eq!(a.stats.collisions, 0);
        }
    }

    #[test]
    fn seed_changes_only_timing_not_outcomes(s in scenario()) {
        let mut s2 = s.clone();
        s2.seed = s.seed.wrapping_add(1);
        let a = run(&s);
        let b = run(&s2);
        // Different seed: payload outcomes identical, drops still zero.
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(b.stats.total_drops(), 0);
    }
}
