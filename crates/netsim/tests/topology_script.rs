//! Scriptable topology faults (ISSUE 7): `TopologyScript` schedules
//! `hold` / `release` / `partition` / `heal` ops at sim times, and the
//! world applies them on both execution engines. The lockdown here is
//! the *hold contract*: a held frame is parked, never dropped — every
//! frame that enters a hold leaves it on `release` (or the final
//! `heal`), so `frames_held == frames_released` once the script is
//! done, and an application-level ARQ recovers through an arbitrary
//! mid-run fault schedule exactly as it would have in a fault-free
//! memory exchange.

use mmpi_netsim::cluster::{run_cluster, ClusterConfig};
use mmpi_netsim::ids::{DatagramDst, GroupId, HostId};
use mmpi_netsim::params::{FaultParams, NetParams};
use mmpi_netsim::time::{SimDuration, SimTime};
use mmpi_netsim::topology::TopologyScript;
use proptest::prelude::*;

const PORT: u16 = 4500;
const GROUP: GroupId = GroupId(7);

/// Rank `r`'s allgather contribution: a tagged payload whose byte sum
/// the receivers fold into their digest.
fn contribution(r: usize) -> Vec<u8> {
    let mut p = vec![b'D', r as u8];
    p.extend((0..254).map(|i| (r * 31 + i) as u8));
    p
}

fn payload_sum(p: &[u8]) -> u64 {
    p.iter().map(|&b| b as u64).sum()
}

/// What every rank must end up with: the byte sum of all `n`
/// contributions — the "memory" answer the lossy run has to match.
fn expected_digest(n: usize) -> u64 {
    (0..n).map(|r| payload_sum(&contribution(r))).sum()
}

/// A self-contained ARQ allgather over raw simulated UDP: each rank
/// re-multicasts its contribution every 500 µs until every peer has
/// unicast-acked it, acks every data datagram it sees, and finishes
/// with an ack-serving drain so late retransmitters still converge.
fn arq_allgather(p: &mut mmpi_netsim::process::SimProcess, n: usize) -> u64 {
    let me = p.rank();
    let s = p.bind(PORT);
    p.join_group(s, GROUP);
    let mine = contribution(me);
    let mut have = vec![false; n];
    let mut acked = vec![false; n];
    have[me] = true;
    acked[me] = true;
    let mut digest = payload_sum(&mine);

    let handle = |p: &mut mmpi_netsim::process::SimProcess,
                  d: &mmpi_netsim::frame::Datagram,
                  have: &mut [bool],
                  acked: &mut [bool],
                  digest: &mut u64| {
        match d.payload[0] {
            b'D' => {
                let r = d.payload[1] as usize;
                if !have[r] {
                    have[r] = true;
                    *digest += payload_sum(&d.payload.to_vec());
                }
                // Ack every copy: the sender retransmits until our ack
                // survives the fabric.
                let sock = s;
                p.send(
                    sock,
                    DatagramDst::Unicast(d.src_host),
                    PORT,
                    vec![b'A', me as u8],
                );
            }
            _ => acked[d.payload[1] as usize] = true,
        }
    };

    while !(have.iter().all(|&h| h) && acked.iter().all(|&a| a)) {
        p.send(s, DatagramDst::Multicast(GROUP), PORT, mine.clone());
        let until = p.now() + SimDuration::from_micros(500);
        while p.now() < until {
            let Some(d) = p.recv_timeout(s, until - p.now()) else {
                break;
            };
            handle(p, &d, &mut have, &mut acked, &mut digest);
        }
    }
    // Drain: keep answering data with acks until the fabric goes quiet
    // for 5 ms, so peers still retransmitting can finish too.
    while let Some(d) = p.recv_timeout(s, SimDuration::from_millis(5)) {
        handle(p, &d, &mut have, &mut acked, &mut digest);
    }
    digest
}

/// The headline scenario: an 8-rank ARQ allgather at 10 % loss. At
/// 300 µs the fabric partitions {2,3} off; at 400 µs frames 0→5 start
/// being *held* (parked, not dropped) until their 1.5 ms release; the
/// partition heals at 2 ms — well before anyone can drain, because
/// nobody can finish without the islanded ranks' data. Recovery must
/// produce the exact memory digest on every rank, the cut must have
/// eaten frames, and every held frame must have been released.
#[test]
fn partition_mid_allgather_heals_and_recovers() {
    let n = 8;
    let faults = FaultParams {
        drop_prob: 0.10,
        topology: TopologyScript::new()
            .partition(SimTime::from_micros(300), vec![vec![HostId(2), HostId(3)]])
            .hold(SimTime::from_micros(400), HostId(0), HostId(5))
            .release(SimTime::from_micros(1500), HostId(0), HostId(5))
            .heal(SimTime::from_micros(2000)),
        ..Default::default()
    };
    let params = NetParams::fast_ethernet_switch().with_faults(faults);
    let cfg = ClusterConfig::new(n, params, 0x70F0);
    let report = run_cluster(&cfg, |mut p| arq_allgather(&mut p, n)).unwrap();

    assert_eq!(
        report.outputs,
        vec![expected_digest(n); n],
        "every rank must recover the full allgather digest"
    );
    assert!(
        report.stats.partition_drops > 0,
        "the cut must actually swallow traffic: {:?}",
        report.stats
    );
    assert!(
        report.stats.frames_held > 0,
        "the hold window must actually park frames: {:?}",
        report.stats
    );
    assert_eq!(
        report.stats.frames_held, report.stats.frames_released,
        "held frames are released, never dropped: {:?}",
        report.stats
    );
    assert!(
        report.stats.injected_frame_losses > 0,
        "the 10 % loss must also fire, so recovery crossed both fault \
         kinds: {:?}",
        report.stats
    );
}

/// Holds park directionally: while `hold(a, b)` is active, `a`'s frames
/// never reach `b`, and the parked copies arrive after the release —
/// late, in order, not dropped.
#[test]
fn held_frames_arrive_after_release_not_never() {
    let faults = FaultParams {
        topology: TopologyScript::new()
            .hold(SimTime::ZERO, HostId(0), HostId(1))
            .release(SimTime::from_micros(1000), HostId(0), HostId(1)),
        ..Default::default()
    };
    let params = NetParams::fast_ethernet_switch().with_faults(faults);
    let cfg = ClusterConfig::new(2, params, 9);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        if p.rank() == 0 {
            for k in 0..3u8 {
                p.send(s, DatagramDst::Unicast(HostId(1)), PORT, vec![k; 40]);
            }
            (Vec::new(), SimTime::ZERO)
        } else {
            let mut got = Vec::new();
            while let Some(d) = p.recv_timeout(s, SimDuration::from_millis(2)) {
                got.push(d.payload[0]);
            }
            (got, p.now())
        }
    })
    .unwrap();
    let (got, when) = &report.outputs[1];
    assert_eq!(got, &[0, 1, 2], "all parked frames arrive, in order");
    assert!(
        *when >= SimTime::from_micros(1000),
        "and only after the release instant (got them by {when})"
    );
    assert_eq!(report.stats.frames_held, 3);
    assert_eq!(report.stats.frames_released, 3);
    assert_eq!(report.stats.datagrams_delivered, 3);
}

/// Build an arbitrary interleaving of topology ops from a proptest
/// sample, always ending in a `heal` after the traffic window.
fn script_from(ops: &[(u64, u8, u32, u32)], heal_at_us: u64) -> TopologyScript {
    let mut script = TopologyScript::new();
    for &(t_us, kind, a, b) in ops {
        let at = SimTime::from_micros(50 + t_us);
        let (a, b) = (HostId(a), HostId(b));
        script = match kind % 3 {
            0 => script.hold(at, a, b),
            1 => script.release(at, a, b),
            _ => script.partition(at, vec![vec![a]]),
        };
    }
    script.heal(SimTime::from_micros(heal_at_us))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No interleaving of holds, releases and partitions can strand a
    /// frame: whatever the schedule does mid-run, the final heal clears
    /// every outstanding hold, so each parked frame is released — the
    /// run terminates and `frames_held == frames_released`.
    #[test]
    fn no_hold_release_interleaving_strands_a_frame(
        ops in proptest::collection::vec(
            (0u64..2500, any::<u8>(), 0u32..4, 0u32..4),
            0..10,
        ),
        seed in 1u64..1000,
    ) {
        let n = 4;
        let faults = FaultParams {
            topology: script_from(&ops, 4000),
            ..Default::default()
        };
        let params = NetParams::fast_ethernet_switch().with_faults(faults);
        let cfg = ClusterConfig::new(n, params, seed);
        let report = run_cluster(&cfg, |mut p| {
            let s = p.bind(PORT);
            p.join_group(s, GROUP);
            // Three spaced multicasts per rank so frames are in flight
            // across every op instant, then a drain.
            for k in 0..3u8 {
                p.compute(SimDuration::from_micros(400));
                p.send(s, DatagramDst::Multicast(GROUP), PORT, vec![k; 120]);
            }
            let mut got = 0u64;
            while p.recv_timeout(s, SimDuration::from_millis(3)).is_some() {
                got += 1;
            }
            got
        })
        .unwrap();
        prop_assert_eq!(
            report.stats.frames_held,
            report.stats.frames_released,
            "stranded frames after {:?}: {:?}",
            &ops,
            &report.stats
        );
    }
}
