//! Switch queueing behaviour under contention: output-port FIFOs, fan-in
//! serialization, and runtime membership changes.

use mmpi_netsim::cluster::{run_cluster, ClusterConfig};
use mmpi_netsim::ids::{DatagramDst, GroupId, HostId};
use mmpi_netsim::params::NetParams;
use mmpi_netsim::time::SimDuration;

const PORT: u16 = 7000;

#[test]
fn fanin_to_one_port_serializes_with_queueing_delay() {
    // Four senders fire a 1400-byte datagram at rank 0 simultaneously.
    // The switch's output port to rank 0 must serialize them: the last
    // arrival is ~3 frame times after the first (plus noise), not
    // concurrent with it.
    let cfg = ClusterConfig::new(5, NetParams::fast_ethernet_switch(), 1);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        if p.rank() == 0 {
            let mut arrivals = Vec::new();
            for _ in 0..4 {
                p.recv(s);
                arrivals.push(p.now().as_micros_f64());
            }
            arrivals
        } else {
            p.send(s, DatagramDst::Unicast(HostId(0)), PORT, vec![1; 1400]);
            Vec::new()
        }
    })
    .unwrap();
    let arrivals = &report.outputs[0];
    // One 1428-byte MAC payload frame is ~118 us of wire time. Receiver
    // software overhead (o_recv = 50 us) dominates per-message spacing
    // only if larger; spacing must be at least the frame time.
    let spacing: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
    for (i, gap) in spacing.iter().enumerate() {
        assert!(
            *gap > 80.0,
            "arrival {i}->{} spaced {gap:.1} us: frames must serialize",
            i + 1
        );
    }
    assert_eq!(report.stats.collisions, 0, "no CSMA/CD on the switch");
}

#[test]
fn queueing_delay_grows_with_burst_depth() {
    // One sender, back-to-back datagrams to one receiver: the k-th
    // datagram's delivery time grows linearly (port FIFO drains in order).
    let cfg = ClusterConfig::new(2, NetParams::fast_ethernet_switch(), 2);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        if p.rank() == 0 {
            for i in 0..6u8 {
                p.send(s, DatagramDst::Unicast(HostId(1)), PORT, vec![i; 1400]);
            }
            Vec::new()
        } else {
            (0..6)
                .map(|_| {
                    let d = p.recv(s);
                    (d.payload[0], p.now().as_micros_f64())
                })
                .collect::<Vec<_>>()
        }
    })
    .unwrap();
    let deliveries = &report.outputs[1];
    // FIFO order preserved.
    for (i, (tagbyte, _)) in deliveries.iter().enumerate() {
        assert_eq!(*tagbyte, i as u8, "switch must preserve FIFO order");
    }
    assert_eq!(report.stats.total_drops(), 0);
}

#[test]
fn runtime_leave_stops_multicast_delivery() {
    let cfg = ClusterConfig::new(3, NetParams::fast_ethernet_switch(), 3);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        let g = GroupId(9);
        p.join_group(s, g);
        match p.rank() {
            0 => {
                // Wait for rank 2's leave notification, then multicast.
                p.recv(s);
                p.send(s, DatagramDst::Multicast(g), PORT, vec![7; 200]);
                true
            }
            1 => p.recv(s).payload.to_vec() == vec![7; 200],
            _ => {
                // Leave the group, tell the root, and verify silence.
                p.leave_group(s, g);
                p.send(s, DatagramDst::Unicast(HostId(0)), PORT, vec![]);
                p.recv_timeout(s, SimDuration::from_millis(10)).is_none()
            }
        }
    })
    .unwrap();
    assert_eq!(report.outputs, vec![true, true, true]);
}

#[test]
fn switch_port_buffer_overflow_drops_frames_not_whole_run() {
    // A tiny port buffer under a many-to-one burst: some frames tail-drop
    // at the switch, and the receiver still gets the survivors.
    let mut params = NetParams::fast_ethernet_switch();
    if let mmpi_netsim::params::FabricKind::Switch(sp) = &mut params.fabric {
        sp.port_buffer_bytes = 4 * 1500;
    }
    let cfg = ClusterConfig::new(6, params, 4);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        if p.rank() == 0 {
            p.compute(SimDuration::from_millis(50));
            let mut got = 0;
            while p.recv_timeout(s, SimDuration::from_millis(5)).is_some() {
                got += 1;
            }
            got
        } else {
            for _ in 0..4 {
                p.send(s, DatagramDst::Unicast(HostId(0)), PORT, vec![0; 1400]);
            }
            0
        }
    })
    .unwrap();
    assert!(
        report.stats.switch_buffer_drops > 0,
        "the burst should overflow the 6 kB port buffer"
    );
    // Conservation: delivered + switch drops == 20 datagrams (one frame
    // each, so frames == datagrams here).
    assert_eq!(
        report.outputs[0] as u64 + report.stats.switch_buffer_drops,
        20
    );
}
