//! Behaviour of the injected-fault layer: per-link drops (with
//! overrides), duplication, bounded reordering, one-shot partitions —
//! and the two meta-properties everything above depends on: lossy runs
//! replay byte-identically, and inert fault params leave a run
//! byte-identical to one that never heard of fault injection.

use mmpi_netsim::cluster::{run_cluster, ClusterConfig};
use mmpi_netsim::ids::{DatagramDst, GroupId, HostId};
use mmpi_netsim::params::{FaultParams, NetParams};
use mmpi_netsim::time::{SimDuration, SimTime};
use mmpi_netsim::topology::TopologyScript;

const PORT: u16 = 4000;

#[test]
fn certain_drop_loses_every_frame() {
    for params in [
        NetParams::fast_ethernet_switch().with_loss(1.0),
        NetParams::fast_ethernet_hub().with_loss(1.0),
    ] {
        let cfg = ClusterConfig::new(2, params, 1);
        let report = run_cluster(&cfg, |mut p| {
            let s = p.bind(PORT);
            if p.rank() == 0 {
                p.send(s, DatagramDst::Unicast(HostId(1)), PORT, vec![0; 100]);
            } else {
                assert!(p.recv_timeout(s, SimDuration::from_millis(5)).is_none());
            }
        })
        .unwrap();
        assert_eq!(report.stats.injected_frame_losses, 1);
        assert_eq!(report.stats.links[1].injected_drops, 1);
        assert_eq!(report.stats.datagrams_delivered, 0);
        assert!(report.stats.total_drops() > 0);
    }
}

#[test]
fn per_link_override_targets_one_receiver() {
    // Global loss 0, but host 2's link drops everything: a multicast
    // reaches host 1 and never host 2.
    let faults = FaultParams {
        per_link_drop: vec![(HostId(2), 1.0)],
        ..Default::default()
    };
    let params = NetParams::fast_ethernet_switch().with_faults(faults);
    let cfg = ClusterConfig::new(3, params, 7);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        let g = GroupId(9);
        p.join_group(s, g);
        if p.rank() == 0 {
            p.send(s, DatagramDst::Multicast(g), PORT, vec![5; 64]);
            true
        } else {
            p.recv_timeout(s, SimDuration::from_millis(5)).is_some()
        }
    })
    .unwrap();
    assert_eq!(report.outputs, vec![true, true, false]);
    assert_eq!(report.stats.links[1].injected_drops, 0);
    assert_eq!(report.stats.links[2].injected_drops, 1);
}

#[test]
fn duplication_delivers_twice_and_counts() {
    let faults = FaultParams {
        dup_prob: 1.0,
        ..Default::default()
    };
    let params = NetParams::fast_ethernet_switch().with_faults(faults);
    let cfg = ClusterConfig::new(2, params, 3);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        if p.rank() == 0 {
            p.send(s, DatagramDst::Unicast(HostId(1)), PORT, vec![9; 30]);
            0
        } else {
            let mut copies = 0;
            while p.recv_timeout(s, SimDuration::from_millis(2)).is_some() {
                copies += 1;
            }
            copies
        }
    })
    .unwrap();
    assert_eq!(report.outputs[1], 2, "dup_prob=1 delivers exactly twice");
    assert_eq!(report.stats.injected_duplicates, 1);
    assert_eq!(report.stats.links[1].injected_dups, 1);
    // The duplicate is delivered as-is: no second fault roll, so exactly
    // one extra copy even at probability 1.
    assert_eq!(report.stats.datagrams_delivered, 2);
}

#[test]
fn reordering_lets_later_frames_overtake() {
    // Frame A is always held back ~400 µs; frame B (sent right after, by
    // which time the reorder coin has already been burned... so force it
    // with a one-entry window): use reorder_prob such that the first
    // frame is delayed and check arrival order flipped.
    let faults = FaultParams {
        reorder_prob: 0.5,
        reorder_max_delay: SimDuration::from_micros(400),
        ..Default::default()
    };
    let params = NetParams::fast_ethernet_switch().with_faults(faults);
    // Scan seeds for one where exactly the first of two back-to-back
    // frames is reordered — deterministic once found.
    let mut flipped = None;
    for seed in 0..64 {
        let cfg = ClusterConfig::new(2, params.clone(), seed);
        let report = run_cluster(&cfg, |mut p| {
            let s = p.bind(PORT);
            if p.rank() == 0 {
                p.send(s, DatagramDst::Unicast(HostId(1)), PORT, vec![1]);
                p.send(s, DatagramDst::Unicast(HostId(1)), PORT, vec![2]);
                Vec::new()
            } else {
                let mut order = Vec::new();
                while let Some(d) = p.recv_timeout(s, SimDuration::from_millis(2)) {
                    order.push(d.payload[0]);
                }
                order
            }
        })
        .unwrap();
        assert_eq!(report.stats.datagrams_delivered, 2, "nothing is lost");
        if report.outputs[1] == vec![2, 1] {
            assert!(report.stats.injected_reorders >= 1);
            flipped = Some(seed);
            break;
        }
    }
    assert!(flipped.is_some(), "no seed in 0..64 flipped two frames");
}

#[test]
fn partition_blocks_cut_then_heals() {
    // Host 1 is islanded for 2 ms starting at t=0. A frame sent during
    // the window dies; the same send after the window arrives.
    let faults = FaultParams {
        topology: TopologyScript::partition_window(
            SimTime::ZERO,
            SimDuration::from_millis(2),
            vec![HostId(1)],
        ),
        ..Default::default()
    };
    let params = NetParams::fast_ethernet_switch().with_faults(faults);
    let cfg = ClusterConfig::new(3, params, 11);
    let report = run_cluster(&cfg, |mut p| {
        let s = p.bind(PORT);
        match p.rank() {
            0 => {
                // Inside the window.
                p.send(s, DatagramDst::Unicast(HostId(1)), PORT, vec![1; 10]);
                // Same-side traffic flows during the window.
                p.send(s, DatagramDst::Unicast(HostId(2)), PORT, vec![2; 10]);
                // After the window: cut has healed.
                p.compute(SimDuration::from_millis(3));
                p.send(s, DatagramDst::Unicast(HostId(1)), PORT, vec![3; 10]);
                0u8
            }
            1 => {
                let first = p.recv(s).payload[0];
                assert!(
                    p.recv_timeout(s, SimDuration::from_micros(100)).is_none(),
                    "the in-window frame must not arrive late"
                );
                first
            }
            _ => p.recv(s).payload[0],
        }
    })
    .unwrap();
    assert_eq!(report.outputs, vec![0, 3, 2]);
    assert_eq!(report.stats.partition_drops, 1);
    assert_eq!(report.stats.links[1].partition_drops, 1);
}

/// Lossy runs are a pure function of the seed: same seed, same drops,
/// same stats — the replay property the loss figures rely on.
#[test]
fn lossy_run_replays_byte_identically() {
    let run = |seed: u64| {
        let params = NetParams::fast_ethernet_switch().with_loss(0.3);
        let cfg = ClusterConfig::new(4, params, seed);
        let report = run_cluster(&cfg, |mut p| {
            let s = p.bind(PORT);
            let g = GroupId(2);
            p.join_group(s, g);
            if p.rank() == 0 {
                for _ in 0..10 {
                    p.send(s, DatagramDst::Multicast(g), PORT, vec![7; 500]);
                }
                0
            } else {
                let mut got = 0u64;
                while p.recv_timeout(s, SimDuration::from_millis(1)).is_some() {
                    got += 1;
                }
                got
            }
        })
        .unwrap();
        (
            report.outputs.clone(),
            format!("{:?}", report.stats),
            report.completion_times.clone(),
        )
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same seed must replay exactly");
    let c = run(43);
    assert_ne!(a.1, c.1, "a different seed should perturb the stats");
}

/// Inert fault params must not perturb anything: the fault RNG stream is
/// separate, so a run with `FaultParams::default()` is byte-identical to
/// the same run with an explicitly-zero fault plan.
#[test]
fn inert_faults_change_nothing() {
    let run = |params: NetParams| {
        let cfg = ClusterConfig::new(3, params, 99).with_start_skew(SimDuration::from_micros(40));
        let report = run_cluster(&cfg, |mut p| {
            let s = p.bind(PORT);
            if p.rank() == 0 {
                p.send(s, DatagramDst::Unicast(HostId(1)), PORT, vec![1; 777]);
                p.send(s, DatagramDst::Unicast(HostId(2)), PORT, vec![2; 777]);
                SimTime::ZERO
            } else {
                p.recv(s);
                p.now()
            }
        })
        .unwrap();
        (
            format!("{:?}", report.stats),
            report.completion_times.clone(),
        )
    };
    // Hub params exercise the backoff RNG, the stream faults must not touch.
    let a = run(NetParams::fast_ethernet_hub());
    let b = run(NetParams::fast_ethernet_hub().with_faults(FaultParams::default()));
    assert_eq!(a, b);
}
