//! Heap-allocation assertions for the zero-copy datagram path, measured
//! with a counting global allocator:
//!
//! * steady-state split + assemble allocates a **constant** number of
//!   times per message — growing the chunk count must not grow the
//!   allocation count (the "zero per-chunk allocations" acceptance);
//! * recording a message into the [`RetransmitBuffer`] allocates no
//!   payload-sized memory; and
//! * evicting a record releases the message's buffers — shared `Bytes`
//!   views in the ring do not leak (live bytes return to baseline).
//!
//! Everything runs inside one `#[test]` so no concurrent test thread
//! perturbs the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mmpi_wire::{split_message, Assembler, Bytes, MsgKind, RetransmitBuffer, SendDst};

struct Gauge;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` — every contract (layout
// validity, pointer provenance) is forwarded unchanged; the counters
// are lock-free atomics with no allocation of their own.
unsafe impl GlobalAlloc for Gauge {
    // SAFETY (all three methods): caller upholds GlobalAlloc's
    // contract; we forward the exact same arguments to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) } // SAFETY: forwarded contract.
    }

    // SAFETY: see `alloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) } // SAFETY: forwarded contract.
    }

    // SAFETY: see `alloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        LIVE.fetch_add(new_size as u64, Ordering::Relaxed);
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) } // SAFETY: forwarded contract.
    }
}

#[global_allocator]
static GAUGE: Gauge = Gauge;

/// Mean allocations per call of `f` over `iters` calls (warm-up first).
fn allocs_per(iters: u64, mut f: impl FnMut()) -> u64 {
    f();
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..iters {
        f();
    }
    (ALLOCS.load(Ordering::Relaxed) - before) / iters
}

fn split_assemble_allocs(chunk: usize) -> u64 {
    let payload = Bytes::from(vec![0xA5u8; 64 * 1024]);
    allocs_per(200, || {
        let dgs = split_message(MsgKind::Data, 0, 1, 7, 3, &payload, chunk);
        let mut asm = Assembler::new();
        let mut out = None;
        for d in &dgs {
            if let Some(m) = asm.feed(d).unwrap() {
                out = Some(m);
            }
        }
        assert_eq!(out.expect("complete").payload.len(), 64 * 1024);
    })
}

#[test]
fn datagram_path_allocation_budget() {
    // --- constant allocations per message, independent of chunking ----
    let allocs_2_chunks = split_assemble_allocs(60_000); // 2 chunks
    let allocs_45_chunks = split_assemble_allocs(1472); // 45 chunks
    assert!(
        allocs_45_chunks <= allocs_2_chunks + 2,
        "allocation count grew with chunk count: {allocs_2_chunks} @ 2 chunks vs \
         {allocs_45_chunks} @ 45 chunks — a per-chunk allocation crept in"
    );
    assert!(
        allocs_45_chunks <= 10,
        "split+assemble now costs {allocs_45_chunks} allocations per message (expected ~6)"
    );

    // --- recording is allocation-light and payload-free ---------------
    let payload = Bytes::from(vec![0x5Au8; 1024 * 1024]);
    let dgs = split_message(MsgKind::Data, 0, 1, 7, 3, &payload, 1472);
    let mut rtx = RetransmitBuffer::new(4);
    let mut seq = 0u64;
    let live_before = LIVE.load(Ordering::Relaxed);
    let record_allocs = allocs_per(100, || {
        seq += 1;
        rtx.record(seq, SendDst::Multicast, 7, MsgKind::Data, &dgs);
    });
    assert!(
        record_allocs <= 2,
        "recording a 1 MiB / 713-chunk message allocated {record_allocs} times \
         (expected 1: the Vec of datagram views)"
    );
    // The ring holds 4 records of ~713 handle-pairs each (~50 kB of
    // views) but must not have duplicated the 1 MiB payload even once.
    let live_grown = LIVE.load(Ordering::Relaxed).saturating_sub(live_before);
    assert!(
        live_grown < 512 * 1024,
        "recording retained {live_grown} B — payload bytes were copied into the ring"
    );

    // --- eviction releases the message memory -------------------------
    // Fill the ring with large messages, then evict them all with empty
    // records: the payload buffers must be freed (no lingering views).
    let live_baseline = LIVE.load(Ordering::Relaxed);
    for s in 0..4u64 {
        let big = Bytes::from(vec![s as u8; 1024 * 1024]);
        let big_dgs = split_message(MsgKind::Data, 0, 1, 9, s, &big, 1472);
        rtx.record(1000 + s, SendDst::Multicast, 9, MsgKind::Data, &big_dgs);
    }
    let live_full = LIVE.load(Ordering::Relaxed);
    assert!(
        live_full - live_baseline >= 4 * 1024 * 1024,
        "ring should be holding ~4 MiB of recorded messages"
    );
    for s in 0..4u64 {
        rtx.record(2000 + s, SendDst::Multicast, 9, MsgKind::Data, &[]);
    }
    let live_after = LIVE.load(Ordering::Relaxed);
    assert!(
        live_after.saturating_sub(live_baseline) < 256 * 1024,
        "eviction leaked recorded payloads: {} B still live",
        live_after - live_baseline
    );
}
