//! Micro-benchmarks of the substrates: wire codec, reassembly, event
//! queue, RNG, and raw simulator throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mmpi_netsim::cluster::{run_cluster, ClusterConfig};
use mmpi_netsim::event::{Event, EventQueue};
use mmpi_netsim::ids::{DatagramDst, HostId};
use mmpi_netsim::params::NetParams;
use mmpi_netsim::rng::SplitMix64;
use mmpi_netsim::time::SimTime;
use mmpi_wire::{split_message, Assembler, Bytes, MsgKind};

fn wire_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    for size in [0usize, 1000, 10_000, 60_000] {
        let payload = Bytes::from(vec![0xA5u8; size]);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("split", size), &payload, |b, p| {
            b.iter(|| split_message(MsgKind::Data, 0, 1, 2, 3, p, 60_000));
        });
        let dgs = split_message(MsgKind::Data, 0, 1, 2, 3, &payload, 8_000);
        g.bench_with_input(BenchmarkId::new("assemble", size), &dgs, |b, dgs| {
            b.iter(|| {
                let mut asm = Assembler::new();
                let mut out = None;
                for d in dgs {
                    if let Some(m) = asm.feed(d).unwrap() {
                        out = Some(m);
                    }
                }
                out
            });
        });
    }
    g.finish();
}

fn event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                let mut rng = SplitMix64::new(7);
                for i in 0..n {
                    q.schedule(
                        SimTime::from_nanos(rng.next_below(1_000_000)),
                        Event::Timer {
                            host: HostId(0),
                            socket: None,
                            token: i as u64,
                        },
                    );
                }
                let mut count = 0;
                while q.pop().is_some() {
                    count += 1;
                }
                count
            });
        });
    }
    g.finish();
}

fn rng_throughput(c: &mut Criterion) {
    c.bench_function("splitmix64_1k_draws", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        });
    });
}

fn sim_throughput(c: &mut Criterion) {
    // How fast does the whole co-simulation machinery execute a busy
    // 9-rank broadcast trial? (Wall time per simulated collective.)
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for (name, params) in [
        ("hub_9p_allscouts", NetParams::fast_ethernet_hub()),
        ("switch_9p_allscouts", NetParams::fast_ethernet_switch()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = ClusterConfig::new(9, params.clone(), 42);
                run_cluster(&cfg, |mut p| {
                    let s = p.bind(9000);
                    if p.rank() == 0 {
                        for _ in 0..8 {
                            p.recv(s);
                        }
                    } else {
                        p.send(s, DatagramDst::Unicast(HostId(0)), 9000, vec![0; 1500]);
                    }
                })
                .unwrap()
                .makespan
            });
        });
    }
    g.finish();
}

criterion_group!(
    micro,
    wire_codec,
    event_queue,
    rng_throughput,
    sim_throughput
);
criterion_main!(micro);
