//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * scouted multicast vs PVM-style ack/retransmit (the paper's ref [2]
//!   negative result) under the strict posted-receive loss model;
//! * binary vs linear scout gathering as N grows;
//! * managed (IGMP-snooping) vs unmanaged (flooding) switch;
//! * switch forwarding-latency sensitivity;
//! * the naive flat tree as a lower baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mmpi_core::{expect_coll, BcastAlgorithm, Communicator};
use mmpi_netsim::cluster::ClusterConfig;
use mmpi_netsim::params::{FabricKind, NetParams, SwitchParams};
use mmpi_netsim::SimDuration;
use mmpi_transport::{run_sim_world, SimCommConfig};

fn bcast_makespan(n: usize, params: NetParams, algo: BcastAlgorithm, bytes: usize) -> f64 {
    let cluster = ClusterConfig::new(n, params, 17);
    run_sim_world(&cluster, &SimCommConfig::default(), move |c| {
        let mut comm = Communicator::new(c).with_bcast(algo);
        let mut buf = if comm.rank() == 0 {
            vec![1; bytes]
        } else {
            vec![0; bytes]
        };
        expect_coll(comm.bcast(0, &mut buf));
    })
    .unwrap()
    .makespan
    .as_micros_f64()
}

fn scouted_vs_ack_under_strict_loss(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_strict_loss");
    g.sample_size(10);
    let mut params = NetParams::fast_ethernet_switch();
    params.host.strict_posted_recv = true;
    for (label, algo) in [
        ("scouted-binary", BcastAlgorithm::McastBinary),
        ("pvm-ack-retransmit", BcastAlgorithm::PvmAck),
    ] {
        let p = params.clone();
        g.bench_function(label, move |b| {
            let p = p.clone();
            b.iter(|| bcast_makespan(6, p.clone(), algo, 2000));
        });
    }
    g.finish();
}

fn scout_tree_shape(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scout_gathering");
    g.sample_size(10);
    for n in [4usize, 9, 16] {
        for (label, algo) in [
            ("binary", BcastAlgorithm::McastBinary),
            ("linear", BcastAlgorithm::McastLinear),
            ("flat-tree", BcastAlgorithm::FlatTree),
        ] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, move |b, &n| {
                b.iter(|| bcast_makespan(n, NetParams::fast_ethernet_switch(), algo, 2000));
            });
        }
    }
    g.finish();
}

fn snooping_vs_flooding(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_igmp_snooping");
    g.sample_size(10);
    for (label, flood) in [("snooped", false), ("flooded", true)] {
        let params = NetParams {
            fabric: FabricKind::Switch(SwitchParams {
                flood_multicast: flood,
                ..Default::default()
            }),
            ..Default::default()
        };
        g.bench_function(label, move |b| {
            let params = params.clone();
            b.iter(|| bcast_makespan(9, params.clone(), BcastAlgorithm::McastBinary, 3000));
        });
    }
    g.finish();
}

fn switch_latency_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_switch_latency");
    g.sample_size(10);
    for us in [2u64, 10, 50] {
        let params = NetParams {
            fabric: FabricKind::Switch(SwitchParams {
                forwarding_latency: SimDuration::from_micros(us),
                ..Default::default()
            }),
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("fwd_latency_us", us), &params, |b, p| {
            b.iter(|| bcast_makespan(4, p.clone(), BcastAlgorithm::McastBinary, 2000));
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    scouted_vs_ack_under_strict_loss,
    scout_tree_shape,
    snooping_vs_flooding,
    switch_latency_sweep
);
criterion_main!(ablations);
