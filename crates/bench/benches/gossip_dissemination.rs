//! Criterion bench: the dissemination seam (`docs/PROTOCOL.md` §11).
//!
//! Three questions, each answered with deterministic virtual-time
//! numbers printed next to the criterion wall times (the data
//! `BENCH_9.json` records):
//!
//! * `lossy` — what does the epidemic Advr/Want plane cost against the
//!   unicast binomial, ring (scatter–allgather) and raw-multicast
//!   broadcasts at 10% per-link loss, N ∈ {16, 64}? Gossip pays digest
//!   traffic and a pull round-trip per receiver; multicast pays one
//!   frame plus NACK repair. The crossover the sweep shows is the
//!   paper's tradeoff inverted: gossip buys multicast-independence with
//!   latency, not bandwidth (each payload still crosses each link once).
//! * `unicast_only` — the same broadcasts on a fabric whose switch
//!   forwards no multicast at all. The multicast algorithms livelock
//!   (their repair loop re-solicits forever; the trial dies at a small
//!   virtual time limit), the unicast baselines are unaffected, and
//!   gossip completes with per-link payload crossings ≤ 1 — the
//!   acceptance row `BENCH_9.json` pins.
//! * `partitioned` — a root↔receiver link held down for 150 ms of
//!   virtual time (a partial partition: connectivity is non-transitive).
//!   Multicast cannot finish before the heal — only the origin's ring
//!   answers NACKs, and the origin is unreachable — while gossip pulls
//!   the payload from any relay that has it and completes three orders
//!   of magnitude sooner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mmpi_cluster::{run_trial, try_run_trial, Experiment, Fabric, Workload};
use mmpi_core::{BcastAlgorithm, Communicator};
use mmpi_netsim::cluster::ClusterConfig;
use mmpi_netsim::ids::HostId;
use mmpi_netsim::params::{FaultParams, NetParams};
use mmpi_netsim::time::{SimDuration, SimTime};
use mmpi_netsim::topology::TopologyScript;
use mmpi_transport::{run_sim_world_stats, RepairConfig, SimCommConfig};

const BYTES: usize = 4096;

/// The four broadcast families the seam is swept against.
const ALGOS: &[(&str, BcastAlgorithm, bool)] = &[
    ("binomial", BcastAlgorithm::MpichBinomial, false),
    ("ring", BcastAlgorithm::ScatterAllgather, false),
    ("mcast", BcastAlgorithm::McastBinary, false),
    ("gossip", BcastAlgorithm::Gossip, true),
];

fn point(
    n: usize,
    algo: BcastAlgorithm,
    gossip: bool,
    unicast_only: bool,
    loss: f64,
) -> Experiment {
    let mut exp = Experiment::new(n, Fabric::Switch, Workload::Bcast { algo, bytes: BYTES })
        .with_trials(1)
        .with_seed(9)
        .with_loss(loss);
    if gossip {
        exp = exp.with_gossip();
    }
    if unicast_only {
        exp = exp.with_unicast_only();
    }
    exp
}

fn bench_lossy(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip_bcast_lossy");
    g.sample_size(10);
    for n in [16usize, 64] {
        for &(label, algo, gossip) in ALGOS {
            let exp = point(n, algo, gossip, false, 0.10);
            let (us, stats) = run_trial(&exp, 0);
            println!(
                "# gossip_bcast_lossy n={n} {label}: {:.2}ms virtual \
                 (advrs={} wants={} pulls={} retx={})",
                us / 1e3,
                stats.repair.advrs_sent,
                stats.repair.wants_sent,
                stats.repair.pulls_answered,
                stats.repair.retransmits_sent,
            );
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| run_trial(&exp, 0))
            });
        }
    }
    g.finish();
}

fn bench_unicast_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip_bcast_unicast_only");
    g.sample_size(10);
    for n in [16usize, 64] {
        // The headline failure: raw multicast cannot cross this fabric,
        // lossless or not. A 200 ms virtual cap is ~100 repair rounds —
        // ample proof of the livelock without simulating the default 60 s.
        let doomed = point(n, BcastAlgorithm::McastBinary, false, true, 0.10)
            .with_time_limit(SimDuration::from_millis(200));
        let err = try_run_trial(&doomed, 0)
            .expect_err("multicast bcast must fail on a unicast-only switch");
        println!("# gossip_bcast_unicast_only n={n} mcast(10% loss): FAILS ({err})");
        // The subtler failure: the *unicast* binomial also livelocks once
        // frames drop, because the SRM repair plane solicits by multicast
        // — which this fabric eats. Only the gossip plane repairs by
        // unicast throughout.
        let doomed = point(n, BcastAlgorithm::MpichBinomial, false, true, 0.10)
            .with_time_limit(SimDuration::from_millis(200));
        let err = try_run_trial(&doomed, 0)
            .expect_err("multicast NACK solicits cannot cross a unicast-only switch");
        println!("# gossip_bcast_unicast_only n={n} binomial(10% loss): FAILS ({err})");
        // Lossless sweep: every unicast-clean algorithm completes; the
        // comparable baseline trio for gossip's multicast-less latency.
        for &(label, algo, gossip) in ALGOS {
            if algo == BcastAlgorithm::McastBinary {
                continue;
            }
            let exp = point(n, algo, gossip, true, 0.0);
            let (us, stats) = run_trial(&exp, 0);
            println!(
                "# gossip_bcast_unicast_only n={n} {label}: {:.2}ms virtual \
                 (advrs={} pulls={} mcast_drops={})",
                us / 1e3,
                stats.repair.advrs_sent,
                stats.repair.pulls_answered,
                stats.net.unicast_only_drops,
            );
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| run_trial(&exp, 0))
            });
        }
        // And gossip alone survives loss here: its advertisements, pulls
        // and repairs are all unicast.
        let exp = point(n, BcastAlgorithm::Gossip, true, true, 0.10);
        let (us, stats) = run_trial(&exp, 0);
        println!(
            "# gossip_bcast_unicast_only n={n} gossip(10% loss): {:.2}ms virtual \
             (advrs={} pulls={} retx={})",
            us / 1e3,
            stats.repair.advrs_sent,
            stats.repair.pulls_answered,
            stats.repair.retransmits_sent,
        );
        g.bench_with_input(BenchmarkId::new("gossip_lossy", n), &n, |b, _| {
            b.iter(|| run_trial(&exp, 0))
        });
        // Acceptance row: with payload tracking on, no chunk crosses any
        // link twice under gossip (clean fabric isolates the epidemic
        // plane's own behaviour from loss-repair recrossings).
        let (_, stats) = run_sim_world_stats(
            &ClusterConfig::new(
                n,
                NetParams::fast_ethernet_switch()
                    .with_unicast_only()
                    .with_payload_tracking(),
                9,
            ),
            &gossip_cfg(9),
            |c| {
                let mut comm = Communicator::new(c).with_bcast(BcastAlgorithm::Gossip);
                let me = comm.rank();
                let mut buf = if me == 0 {
                    vec![7u8; BYTES]
                } else {
                    vec![0; BYTES]
                };
                comm.bcast(0, &mut buf).unwrap();
                comm.barrier().unwrap();
            },
        )
        .expect("tracked gossip bcast");
        let max_dup = stats
            .net
            .links
            .iter()
            .map(|l| l.duplicate_data_chunks)
            .max()
            .unwrap_or(0);
        println!(
            "# gossip_bcast_unicast_only n={n} gossip: max per-link duplicate \
             payload crossings = {max_dup} (acceptance: 0)"
        );
        assert_eq!(max_dup, 0, "payload crossed a link twice under gossip");
    }
    g.finish();
}

fn gossip_cfg(seed: u64) -> SimCommConfig {
    SimCommConfig {
        repair: Some(RepairConfig::sim_default().with_seed(seed).with_gossip()),
        ..Default::default()
    }
}

/// One bcast across a fabric whose root↔victim link is held down until
/// 150 ms. Returns the slowest rank's virtual *delivery* time in µs
/// (read off the endpoint clock inside the closure — the run's
/// `completion_times` also bill the shutdown drain, which the pending
/// release event inflates to the full grace for every algorithm), or
/// the error if the run died at `limit`.
fn partitioned_trial(
    n: usize,
    algo: BcastAlgorithm,
    gossip: bool,
    limit: SimDuration,
    seed: u64,
) -> Result<f64, String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let victim = HostId((n / 2) as u32);
    let faults = FaultParams {
        drop_prob: 0.10,
        topology: TopologyScript::new()
            .hold(SimTime::ZERO, HostId(0), victim)
            .release(SimTime::from_micros(150_000), HostId(0), victim),
        ..Default::default()
    };
    let params = NetParams::fast_ethernet_switch().with_faults(faults);
    let mut cluster = ClusterConfig::new(n, params, seed);
    cluster.time_limit = limit;
    let cfg = if gossip {
        gossip_cfg(seed)
    } else {
        SimCommConfig::default().with_repair()
    };
    let slowest = Arc::new(AtomicU64::new(0));
    let sl = slowest.clone();
    run_sim_world_stats(&cluster, &cfg, move |c| {
        let mut comm = Communicator::new(c).with_bcast(algo);
        let me = comm.rank();
        let mut buf = if me == 0 {
            vec![7u8; BYTES]
        } else {
            vec![0; BYTES]
        };
        comm.bcast(0, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; BYTES]);
        sl.fetch_max(comm.transport().now().as_nanos(), Ordering::Relaxed);
    })
    .map_err(|e| e.to_string())?;
    Ok(slowest.load(Ordering::Relaxed) as f64 / 1e3)
}

fn bench_partitioned(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip_bcast_partitioned");
    g.sample_size(10);
    let n = 16;
    // While the link is held, multicast cannot deliver to the victim at
    // all — only the unreachable origin answers NACKs — so a cap below
    // the 150 ms heal kills it.
    let err = partitioned_trial(
        n,
        BcastAlgorithm::McastBinary,
        false,
        SimDuration::from_millis(50),
        9,
    )
    .expect_err("multicast cannot finish before the held link heals");
    println!("# gossip_bcast_partitioned n={n} mcast: FAILS within 50ms cap ({err})");
    // Uncapped, both finish: multicast delivers to the victim only once
    // the link heals at 150 ms, gossip as soon as the victim pulls the
    // payload from any relay the partial partition still lets it reach.
    // The gap is the headline.
    let deadline = SimDuration::from_secs(60);
    let mcast_us = partitioned_trial(n, BcastAlgorithm::McastBinary, false, deadline, 9)
        .expect("multicast completes once the link heals");
    let gossip_us = partitioned_trial(n, BcastAlgorithm::Gossip, true, deadline, 9)
        .expect("gossip routes around the held link");
    println!(
        "# gossip_bcast_partitioned n={n}: slowest-rank delivery \
         mcast={:.2}ms (waits for the 150ms heal) vs gossip={:.2}ms",
        mcast_us / 1e3,
        gossip_us / 1e3,
    );
    assert!(
        gossip_us < 150_000.0 && mcast_us >= 150_000.0,
        "gossip must beat the heal; multicast must wait for it"
    );
    g.bench_with_input(BenchmarkId::new("gossip", n), &n, |b, _| {
        b.iter(|| partitioned_trial(n, BcastAlgorithm::Gossip, true, deadline, 9).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_lossy, bench_unicast_only, bench_partitioned);
criterion_main!(benches);
