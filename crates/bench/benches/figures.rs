//! Criterion benches: one group per paper figure.
//!
//! Each bench runs one seeded trial of the figure's workload at a
//! representative point (the full sweep with 25 trials is the `figures`
//! binary). Wall time here is simulator throughput; the *virtual* latency
//! that reproduces the paper's y-axis is what the `figures` binary
//! reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mmpi_cluster::experiment::{run_trial, Experiment, Fabric, Workload};
use mmpi_core::{BarrierAlgorithm, BcastAlgorithm};

fn bcast_exp(n: usize, fabric: Fabric, algo: BcastAlgorithm, bytes: usize) -> Experiment {
    Experiment::new(n, fabric, Workload::Bcast { algo, bytes }).with_trials(1)
}

fn bench_bcast_figure(c: &mut Criterion, group_name: &str, n: usize, fabric: Fabric, bytes: usize) {
    let mut g = c.benchmark_group(group_name);
    g.sample_size(10);
    for (label, algo) in [
        ("mpich", BcastAlgorithm::MpichBinomial),
        ("mcast-linear", BcastAlgorithm::McastLinear),
        ("mcast-binary", BcastAlgorithm::McastBinary),
    ] {
        let exp = bcast_exp(n, fabric, algo, bytes);
        g.bench_with_input(BenchmarkId::new(label, bytes), &exp, |b, exp| {
            b.iter(|| run_trial(exp, 0));
        });
    }
    g.finish();
}

fn fig07(c: &mut Criterion) {
    bench_bcast_figure(c, "fig07_bcast_4p_hub", 4, Fabric::Hub, 2000);
}

fn fig08(c: &mut Criterion) {
    bench_bcast_figure(c, "fig08_bcast_4p_switch", 4, Fabric::Switch, 2000);
}

fn fig09(c: &mut Criterion) {
    bench_bcast_figure(c, "fig09_bcast_6p_switch", 6, Fabric::Switch, 2000);
}

fn fig10(c: &mut Criterion) {
    bench_bcast_figure(c, "fig10_bcast_9p_switch", 9, Fabric::Switch, 2000);
}

fn fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_hub_vs_switch_4p");
    g.sample_size(10);
    for (label, fabric, algo) in [
        ("mpich-hub", Fabric::Hub, BcastAlgorithm::MpichBinomial),
        (
            "mpich-switch",
            Fabric::Switch,
            BcastAlgorithm::MpichBinomial,
        ),
        ("binary-hub", Fabric::Hub, BcastAlgorithm::McastBinary),
        ("binary-switch", Fabric::Switch, BcastAlgorithm::McastBinary),
    ] {
        let exp = bcast_exp(4, fabric, algo, 4000);
        g.bench_function(label, |b| b.iter(|| run_trial(&exp, 0)));
    }
    g.finish();
}

fn fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_scaling_369p_switch");
    g.sample_size(10);
    for n in [3usize, 6, 9] {
        for (label, algo) in [
            ("mpich", BcastAlgorithm::MpichBinomial),
            ("linear", BcastAlgorithm::McastLinear),
        ] {
            let exp = bcast_exp(n, Fabric::Switch, algo, 3000);
            g.bench_with_input(BenchmarkId::new(label, n), &exp, |b, exp| {
                b.iter(|| run_trial(exp, 0));
            });
        }
    }
    g.finish();
}

fn fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_barrier_hub");
    g.sample_size(10);
    for n in [2usize, 5, 9] {
        for (label, algo) in [
            ("multicast", BarrierAlgorithm::McastBinary),
            ("mpich", BarrierAlgorithm::Mpich),
        ] {
            let exp = Experiment::new(n, Fabric::Hub, Workload::Barrier { algo }).with_trials(1);
            g.bench_with_input(BenchmarkId::new(label, n), &exp, |b, exp| {
                b.iter(|| run_trial(exp, 0));
            });
        }
    }
    g.finish();
}

criterion_group!(figures, fig07, fig08, fig09, fig10, fig11, fig12, fig13);
criterion_main!(figures);
