//! Criterion bench: the membership layer (`docs/PROTOCOL.md` §10).
//!
//! Two questions, both answered with deterministic virtual-time
//! numbers printed next to the criterion wall times (the data
//! `BENCH_8.json` records):
//!
//! * `detect` — how fast does the detector confirm a silent rank, as a
//!   function of the heartbeat interval, at N ∈ {16, 64}? The victim
//!   crashes right after a barrier; every survivor polls until
//!   `failed_peers()` is non-empty and reports the virtual latency
//!   from the barrier. Confirmation takes
//!   `(suspicion_factor + confirm_misses) × max(rto, interval)` of
//!   silence plus up to one beacon period of scheduling slack, so the
//!   printed medians track `7 × interval` once the interval dominates
//!   the 2 ms rto.
//! * `shrink_vs_clean` — what does the full PeerFailed → shrink →
//!   retry recovery cost against the same collective completing
//!   cleanly, at 10% loss? The clean run is the denominator the
//!   recovery's wall time should be read against (detection dominates;
//!   the vote round itself is one unicast exchange).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mmpi_core::{expect_coll, AllgatherAlgorithm, Communicator};
use mmpi_netsim::cluster::ClusterConfig;
use mmpi_netsim::ids::HostId;
use mmpi_netsim::params::{FaultParams, NetParams};
use mmpi_netsim::time::SimTime;
use mmpi_netsim::topology::TopologyScript;
use mmpi_transport::{run_sim_world_stats, Comm, RecvError, RepairConfig, SimCommConfig};

fn member_cfg(seed: u64, interval: Duration) -> SimCommConfig {
    SimCommConfig {
        repair: Some(
            RepairConfig::sim_default()
                .with_seed(seed)
                .with_membership(interval),
        ),
        ..Default::default()
    }
}

/// Crash-to-confirmation latency: returns each survivor's virtual
/// nanoseconds from the post-barrier instant to its local confirmation
/// of the victim. Lossless fabric — this measures the detector's
/// timers, not repair tails.
fn detect_trial(n: usize, interval: Duration, seed: u64) -> Vec<u64> {
    let victim = n / 2;
    let params = NetParams::fast_ethernet_switch();
    let (report, _) = run_sim_world_stats(
        &ClusterConfig::new(n, params, seed),
        &member_cfg(seed, interval),
        move |c| {
            let me = c.rank();
            let mut comm = Communicator::new(c);
            expect_coll(comm.barrier());
            let t0 = comm.transport().now();
            if me == victim {
                comm.transport_mut().simulate_crash();
                return 0u64;
            }
            for _ in 0..10_000 {
                comm.transport_mut().progress();
                comm.transport_mut().compute(Duration::from_micros(500));
                if !comm.transport().failed_peers().is_empty() {
                    return comm.transport().now().as_nanos() - t0.as_nanos();
                }
            }
            panic!("rank {me}: victim never confirmed");
        },
    )
    .expect("detect trial failed");
    let mut lat: Vec<u64> = report
        .outputs
        .iter()
        .enumerate()
        .filter(|&(r, _)| r != victim)
        .map(|(_, &v)| v)
        .collect();
    lat.sort_unstable();
    lat
}

/// One allgather world at 10% loss; with `kill`, the victim dies
/// mid-`iallgather` and the survivors run the full PeerFailed →
/// shrink → retry recovery. Returns the slowest rank's virtual
/// completion time in nanoseconds.
fn shrink_trial(n: usize, kill: bool, seed: u64) -> u64 {
    let victim = n / 2;
    let faults = FaultParams {
        drop_prob: 0.10,
        topology: if kill {
            TopologyScript::new().crash(SimTime::from_micros(50_000), HostId(victim as u32))
        } else {
            TopologyScript::new()
        },
        ..Default::default()
    };
    let params = NetParams::fast_ethernet_switch().with_faults(faults);
    let (report, _) = run_sim_world_stats(
        &ClusterConfig::new(n, params, seed),
        &member_cfg(seed, Duration::from_millis(4)),
        move |c| {
            let me = c.rank();
            let block = vec![me as u8 + 1; 32];
            let mut comm = Communicator::new(c).with_allgather(AllgatherAlgorithm::Multicast);
            let warm = expect_coll(comm.allgather(&block));
            assert_eq!(warm.len(), n);
            expect_coll(comm.barrier());
            if kill && me == victim {
                drop(comm.iallgather(&block));
                comm.transport_mut().simulate_crash();
                return;
            }
            match comm.allgather(&block) {
                Ok(out) => assert_eq!(out.len(), n, "clean run must see every block"),
                Err(RecvError::PeerFailed { .. }) => {
                    let mut comm = comm.shrink().expect("survivor agreement");
                    let out = expect_coll(comm.allgather(&block));
                    assert_eq!(out.len(), n - 1);
                    expect_coll(comm.barrier());
                }
                Err(e) => panic!("rank {me}: {e}"),
            }
        },
    )
    .expect("shrink trial failed");
    report
        .completion_times
        .iter()
        .map(|t| t.as_nanos())
        .max()
        .unwrap_or(0)
}

fn bench_detect(c: &mut Criterion) {
    let mut g = c.benchmark_group("membership_detect");
    g.sample_size(10);
    for n in [16usize, 64] {
        for ms in [2u64, 4, 8] {
            let interval = Duration::from_millis(ms);
            let lat = detect_trial(n, interval, 1);
            println!(
                "# membership_detect n={n} hb={ms}ms: confirm latency \
                 first={:.2}ms median={:.2}ms last={:.2}ms (virtual)",
                lat[0] as f64 / 1e6,
                lat[lat.len() / 2] as f64 / 1e6,
                lat[lat.len() - 1] as f64 / 1e6,
            );
            g.bench_with_input(BenchmarkId::new(format!("hb_{ms}ms"), n), &n, |b, &n| {
                b.iter(|| detect_trial(n, interval, 1))
            });
        }
    }
    g.finish();
}

fn bench_shrink(c: &mut Criterion) {
    let mut g = c.benchmark_group("membership_shrink_vs_clean");
    g.sample_size(10);
    for n in [16usize] {
        for kill in [false, true] {
            let label = if kill { "kill_shrink_retry" } else { "clean" };
            let slowest = shrink_trial(n, kill, 1);
            println!(
                "# membership_shrink n={n} {label}: slowest completion \
                 {:.2}ms (virtual, incl. drain)",
                slowest as f64 / 1e6
            );
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| shrink_trial(n, kill, 1));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_detect, bench_shrink);
criterion_main!(benches);
