//! The datagram hot path end-to-end: split → retransmit-record →
//! NACK-replay → assemble, at paper-relevant message sizes and repair
//! fan-outs.
//!
//! This is the benchmark group behind the recorded `BENCH_3.json`
//! baseline: it measures exactly the per-message software path every
//! collective send/receive takes, independent of any network model, so
//! a change to the buffer-ownership strategy (see `docs/PERFORMANCE.md`)
//! shows up here undiluted. The recorded "before" numbers are from the
//! pre-zero-copy implementation (`Vec<Vec<u8>>` chunks, payload-copying
//! record/replay); the benchmark ids are unchanged so the JSON reports
//! compare directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mmpi_wire::{
    split_message, Assembler, Bytes, Datagram, Message, MsgKind, RetransmitBuffer, SendDst,
};

/// Wire-realistic chunking: one chunk per MTU-sized datagram, the mode
/// where per-chunk costs dominate.
const MTU_CHUNK: usize = 1472;

const KIB: usize = 1024;
const TAG: u32 = 7;

fn payload(size: usize) -> Bytes {
    (0..size)
        .map(|i| (i * 131) as u8)
        .collect::<Vec<u8>>()
        .into()
}

fn assemble_one(dgs: &[Datagram]) -> Option<Message> {
    let mut asm = Assembler::new();
    let mut out = None;
    for d in dgs {
        if let Some(m) = asm.feed(d).unwrap() {
            out = Some(m);
        }
    }
    out
}

/// Split a message into MTU-sized datagrams and reassemble it — the
/// baseline-acceptance path (sender-side encode plus one receiver-side
/// pass over every payload byte).
fn split_assemble(c: &mut Criterion) {
    let mut g = c.benchmark_group("datagram_path");
    for size in [KIB, 64 * KIB, 1024 * KIB] {
        let p = payload(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("split_assemble", size), &p, |b, p| {
            b.iter(|| {
                let dgs = split_message(MsgKind::Data, 0, 1, TAG, 3, p, MTU_CHUNK);
                assemble_one(&dgs).unwrap()
            });
        });
    }
    // Default chunking (60 kB: the simulated-IP-fragmentation mode).
    for size in [64 * KIB, 1024 * KIB] {
        let p = payload(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("split_assemble_60k", size), &p, |b, p| {
            b.iter(|| {
                let dgs =
                    split_message(MsgKind::Data, 0, 1, TAG, 3, p, mmpi_wire::DEFAULT_MAX_CHUNK);
                assemble_one(&dgs).unwrap()
            });
        });
    }
    g.finish();
}

/// Recording a sent message into the retransmit ring (every repair-armed
/// send pays this). Now a handful of refcount bumps.
fn retransmit_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("datagram_path");
    for size in [64 * KIB, 1024 * KIB] {
        let dgs = split_message(MsgKind::Data, 0, 1, TAG, 1, &payload(size), MTU_CHUNK);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("record", size), &dgs, |b, dgs| {
            let mut rtx = RetransmitBuffer::new(8);
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                rtx.record(seq, SendDst::Multicast, TAG, MsgKind::Data, dgs);
                rtx.len()
            });
        });
    }
    g.finish();
}

/// Answering NACKs from `n` stuck receivers out of the ring, the way the
/// transports' repair loop does (replay every matching record to each
/// requester as wire datagrams).
fn nack_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("datagram_path");
    let size = 64 * KIB;
    let dgs = split_message(MsgKind::Data, 0, 1, TAG, 1, &payload(size), MTU_CHUNK);
    let mut rtx = RetransmitBuffer::new(8);
    rtx.record(1, SendDst::Multicast, TAG, MsgKind::Data, &dgs);
    for n in [4usize, 16, 64] {
        g.throughput(Throughput::Bytes((size * n) as u64));
        g.bench_with_input(BenchmarkId::new("nack_replay", n), &n, |b, &n| {
            b.iter(|| {
                let mut sent = 0usize;
                for requester in 0..n as u32 {
                    for r in rtx.matching(requester, TAG) {
                        // The transport sends the recorded views as-is.
                        for d in &r.datagrams {
                            sent += criterion::black_box(d.clone()).len();
                        }
                    }
                }
                sent
            });
        });
    }
    g.finish();
}

/// The whole per-message lifecycle at fan-out `n`: the sender splits and
/// records once, `n` receivers each assemble, one receiver lost the
/// original multicast entirely and recovers via a NACK replay.
fn pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("datagram_path");
    let size = 64 * KIB;
    let p = payload(size);
    for n in [4usize, 16, 64] {
        g.throughput(Throughput::Bytes((size * (n + 1)) as u64));
        g.bench_with_input(BenchmarkId::new("pipeline", n), &n, |b, &n| {
            b.iter(|| {
                let mut rtx = RetransmitBuffer::new(8);
                let dgs = split_message(MsgKind::Data, 0, 1, TAG, 3, &p, MTU_CHUNK);
                rtx.record(3, SendDst::Multicast, TAG, MsgKind::Data, &dgs);
                for _receiver in 0..n {
                    assemble_one(&dgs).unwrap();
                }
                // Receiver 0 saw nothing: one NACK round re-sends the
                // buffered views, which it assembles from scratch.
                let mut done = None;
                for r in rtx.matching(0, TAG) {
                    done = assemble_one(&r.datagrams);
                }
                done.unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(
    datagram_path,
    split_assemble,
    retransmit_record,
    nack_replay,
    pipeline
);
criterion_main!(datagram_path);
