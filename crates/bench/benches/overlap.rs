//! Criterion bench: blocking vs request-based collectives (ISSUE 5).
//!
//! Two operations at N ∈ {4, 16, 64} over the in-memory backend (real
//! threads — measured wall time is genuine end-to-end cost):
//!
//! * `ring_allgather` — the classic ring, blocking
//!   (`many_to_many::allgather_ring`: each travelling block is received
//!   into an owned buffer and re-imported for the next hop) vs the
//!   request-based `Communicator::iallgather` state machine (all ring
//!   receives posted upfront, every claimed block forwarded as the
//!   shared `Bytes` view it arrived in — zero per-hop payload copies).
//! * `pipelined_bcast` — van de Geijn scatter + ring allgather,
//!   blocking (`bcast_scatter_allgather`) vs the request-based
//!   `Communicator::ibcast` scatter machine (same wire format, same
//!   block framing, zero-copy ring forwarding).
//!
//! Block sizes shrink as N grows so one iteration moves a comparable
//! amount of data per rank at every point. `BENCH_5.json` records a
//! quick-mode run; the `overlap` group is part of the CI quick JSON job.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mmpi_core::{expect_coll, AllgatherAlgorithm, BcastAlgorithm, CollRequest, Communicator};
use mmpi_transport::run_mem_world;

/// Per-rank block size for an N-rank ring: keep total per-iteration
/// traffic in the same ballpark across N.
fn block_bytes(n: usize) -> usize {
    match n {
        // Single-chunk blocks (wire chunk limit is 60 kB): the arrival
        // payload is a zero-copy slice of the sender's encode buffer,
        // which is exactly what the request path forwards for free.
        0..=32 => 48 * 1024,
        _ => 8 * 1024,
    }
}

fn ring_allgather_blocking(n: usize, bytes: usize) {
    let out = run_mem_world(n, 0, move |c| {
        let mut comm = Communicator::new(c).with_allgather(AllgatherAlgorithm::Ring);
        let mine = vec![comm.rank() as u8; bytes];
        expect_coll(comm.allgather(&mine)).len()
    });
    assert!(out.iter().all(|&l| l == n));
}

fn ring_allgather_requests(n: usize, bytes: usize) {
    let out = run_mem_world(n, 0, move |c| {
        let mut comm = Communicator::new(c).with_allgather(AllgatherAlgorithm::Ring);
        let mine = vec![comm.rank() as u8; bytes];
        let req = comm.iallgather(&mine);
        expect_coll(req.wait(comm.transport_mut())).len()
    });
    assert!(out.iter().all(|&l| l == n));
}

fn pipelined_bcast_blocking(n: usize, bytes: usize) {
    let out = run_mem_world(n, 0, move |c| {
        let mut comm = Communicator::new(c).with_bcast(BcastAlgorithm::ScatterAllgather);
        let mut buf = if comm.rank() == 0 {
            vec![0x5A; bytes]
        } else {
            vec![0; bytes]
        };
        expect_coll(comm.bcast(0, &mut buf));
        buf.len()
    });
    assert!(out.iter().all(|&l| l == bytes));
}

fn pipelined_bcast_requests(n: usize, bytes: usize) {
    let out = run_mem_world(n, 0, move |c| {
        let mut comm = Communicator::new(c).with_bcast(BcastAlgorithm::ScatterAllgather);
        let buf = if comm.rank() == 0 {
            vec![0x5A; bytes]
        } else {
            Vec::new()
        };
        let req = comm.ibcast(0, buf);
        expect_coll(req.wait(comm.transport_mut())).len()
    });
    assert!(out.iter().all(|&l| l == bytes));
}

fn bench_overlap(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap");
    g.sample_size(10);
    for n in [4usize, 16, 64] {
        let bytes = block_bytes(n);
        // Every rank contributes one block; the whole op moves n blocks.
        g.throughput(Throughput::Bytes((n * bytes) as u64));
        g.bench_with_input(
            BenchmarkId::new(format!("ring_allgather/blocking/{}KiB", bytes / 1024), n),
            &n,
            |b, &n| b.iter(|| ring_allgather_blocking(n, bytes)),
        );
        g.bench_with_input(
            BenchmarkId::new(format!("ring_allgather/request/{}KiB", bytes / 1024), n),
            &n,
            |b, &n| b.iter(|| ring_allgather_requests(n, bytes)),
        );
        // The broadcast moves one n-block message end to end.
        let total = n * bytes;
        g.throughput(Throughput::Bytes(total as u64));
        g.bench_with_input(
            BenchmarkId::new(format!("pipelined_bcast/blocking/{}KiB", total / 1024), n),
            &n,
            |b, &n| b.iter(|| pipelined_bcast_blocking(n, total)),
        );
        g.bench_with_input(
            BenchmarkId::new(format!("pipelined_bcast/request/{}KiB", total / 1024), n),
            &n,
            |b, &n| b.iter(|| pipelined_bcast_requests(n, total)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_overlap);
criterion_main!(benches);
