//! Criterion bench: the world itself at scale (ISSUE 7).
//!
//! A thousand-host multicast storm driven straight against the `World`
//! driver API — no rank threads, no protocol stack, just the simulator
//! moving frames — comparing the sequential event-loop engine against
//! the frame-based parallel engine (`RunMode::Frames`) at several
//! worker counts, N ∈ {256, 1024}, 5 % injected loss.
//!
//! Two effects are on display. The parallel speedup proper needs cores;
//! on a single-core runner the interesting number is `frames/w1` vs
//! `event_loop` — the frame engine replaces one global binary heap of
//! every in-flight event (O(log total) per operation, cache-hostile at
//! N=1024) with per-host queues merged at Δ-frame barriers, which wins
//! on its own. `BENCH_7.json` records a quick-mode sweep; the
//! `world_scale` group is part of the CI quick JSON job.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mmpi_netsim::ids::{DatagramDst, GroupId, HostId, UdpPort};
use mmpi_netsim::params::NetParams;
use mmpi_netsim::world::{RunMode, StepOutcome, World};
use mmpi_netsim::SimTime;

const PORT: UdpPort = UdpPort(4400);
const GROUP: GroupId = GroupId(1);

/// Every 16th host multicasts two 1200-byte datagrams to the full
/// group on staggered instants; the run ends when the fabric drains.
/// At N=1024 that is 128 senders × 2 sends × 1024 receivers ≈ 260 k
/// frame deliveries per iteration.
fn storm(n: usize, mode: RunMode, seed: u64) -> u64 {
    let params = NetParams::fast_ethernet_switch().with_loss(0.05);
    let mut world = World::with_mode(n, params, seed, mode);
    for h in 0..n as u32 {
        let s = world.bind(HostId(h), PORT);
        world.join_group_quiet(HostId(h), s, GROUP);
    }
    for (k, h) in (0..n as u32).step_by(16).enumerate() {
        for j in 0..2u64 {
            world.send_datagram(
                HostId(h),
                PORT,
                DatagramDst::Multicast(GROUP),
                PORT,
                vec![h as u8; 1200].into(),
                SimTime::from_micros(5 + (k as u64 % 7) * 3 + 40 * j),
                false,
                false,
            );
        }
    }
    while !matches!(world.step(), StepOutcome::Quiescent) {}
    let delivered = world.stats().datagrams_delivered;
    assert!(delivered > 0, "the storm must deliver");
    delivered
}

fn bench_world_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("world_scale");
    g.sample_size(10);
    for n in [256usize, 1024] {
        // Throughput in delivered datagrams: ~0.95 × senders × 2 × n.
        let senders = n.div_ceil(16) as u64;
        g.throughput(Throughput::Elements(senders * 2 * n as u64));
        g.bench_with_input(BenchmarkId::new("event_loop", n), &n, |b, &n| {
            b.iter(|| storm(n, RunMode::EventLoop, 7))
        });
        for workers in [1usize, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("frames/w{workers}"), n),
                &n,
                |b, &n| b.iter(|| storm(n, RunMode::Frames { workers }, 7)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_world_scale);
criterion_main!(benches);
