//! Criterion bench: broadcast under injected per-link frame loss.
//!
//! Measures simulator throughput of the NACK/retransmit recovery path:
//! one seeded trial of a 4 kB multicast-binary broadcast at 0%, 1% and
//! 10% loss on the switch fabric (repair is enabled automatically for
//! the lossy points by the experiment harness). Wall time grows with the
//! loss rate because recovery rounds add simulated events; the *virtual*
//! latency and the drop/NACK/retransmit tallies are what
//! `mmpi_cluster::loss_sweep` reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mmpi_cluster::experiment::{run_trial, Experiment, Fabric, Workload};
use mmpi_core::BcastAlgorithm;

fn bench_lossy_bcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("bcast_lossy_4kB_6p_switch");
    g.sample_size(10);
    for loss in [0.0f64, 0.01, 0.10] {
        let exp = Experiment::new(
            6,
            Fabric::Switch,
            Workload::Bcast {
                algo: BcastAlgorithm::McastBinary,
                bytes: 4096,
            },
        )
        .with_trials(1)
        .with_loss(loss);
        let label = format!("loss{:02}pct", (loss * 100.0) as u32);
        g.bench_with_input(BenchmarkId::new(label, 4096), &exp, |b, exp| {
            b.iter(|| run_trial(exp, 0));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lossy_bcast);
criterion_main!(benches);
