//! Criterion bench: the NACK-storm scale axis of the SRM repair
//! scale-out (`docs/PROTOCOL.md` §8).
//!
//! One seeded lossy trial — a 3000-byte multicast-binary broadcast plus
//! a barrier at 10% per-link loss on the switch — run at N ∈ {4, 16, 64}
//! with suppression on and off. The measured wall time tracks simulator
//! event volume (repair traffic is most of it at 10% loss); alongside
//! each timing the bench prints the run's solicit / suppressed /
//! retransmit counters once, which is the data `BENCH_4.json` records:
//! with suppression on, NACK solicits grow sub-linearly in N, without it
//! they explode.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mmpi_core::{expect_coll, BcastAlgorithm, Communicator};
use mmpi_netsim::cluster::ClusterConfig;
use mmpi_netsim::params::NetParams;
use mmpi_netsim::SimDuration;
use mmpi_transport::{run_sim_world_stats, Comm, RepairConfig, SimCommConfig, WorldStats};

fn storm_trial(n: usize, srm: bool, seed: u64) -> WorldStats {
    let mut cfg = SimCommConfig::default();
    let repair = RepairConfig::sim_default().with_seed(seed);
    cfg.repair = Some(if srm { repair } else { repair.without_srm() });
    let cluster = ClusterConfig::new(n, NetParams::fast_ethernet_switch().with_loss(0.10), seed)
        .with_start_skew(SimDuration::from_micros(50));
    let (_, stats) = run_sim_world_stats(&cluster, &cfg, |c| {
        let mut comm = Communicator::new(c).with_bcast(BcastAlgorithm::McastBinary);
        let mut buf = if comm.rank() == 0 {
            vec![0x5A; 3000]
        } else {
            vec![0u8; 3000]
        };
        expect_coll(comm.bcast(0, &mut buf));
        expect_coll(comm.barrier());
        assert!(buf.iter().all(|&b| b == 0x5A), "bcast corrupted data");
        comm.transport_mut().compute(Duration::from_micros(10));
    })
    .expect("storm trial failed");
    stats
}

fn bench_nack_storm(c: &mut Criterion) {
    let mut g = c.benchmark_group("nack_storm_3kB_10pct_switch");
    g.sample_size(10);
    for n in [4usize, 16, 64] {
        for srm in [true, false] {
            let label = if srm { "suppress_on" } else { "suppress_off" };
            // Report the deterministic repair-traffic counters once per
            // case — the sub-linearity evidence next to the timing.
            let s = storm_trial(n, srm, 1);
            println!(
                "# nack_storm n={n} {label}: drops={} nacks={} suppressed={} \
                 overheard={} retransmits={} repairs_suppressed={}",
                s.total_drops(),
                s.repair.nacks_sent,
                s.repair.nacks_suppressed,
                s.repair.nacks_overheard,
                s.repair.retransmits_sent,
                s.repair.repairs_suppressed,
            );
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| storm_trial(n, srm, 1));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_nack_storm);
criterion_main!(benches);
