//! Criterion bench: the NACK-storm scale axis of the SRM repair
//! scale-out (`docs/PROTOCOL.md` §8) and the adaptive control plane on
//! top of it (§9).
//!
//! One seeded lossy trial — a 3000-byte multicast-binary broadcast plus
//! a barrier at 10% per-link loss on the switch — run at N ∈ {4, 16, 64}
//! with suppression on and off. The measured wall time tracks simulator
//! event volume (repair traffic is most of it at 10% loss); alongside
//! each timing the bench prints the run's solicit / suppressed /
//! retransmit counters once, which is the data `BENCH_4.json` records:
//! with suppression on, NACK solicits grow sub-linearly in N, without it
//! they explode.
//!
//! Two §9 groups ride along (recorded in `BENCH_6.json`):
//! `nack_storm_hetero` replays the storm on *heterogeneous* links (a
//! quarter of the hosts behind 4–12 ms extra delay) with fixed versus
//! RTT-adapted timers, and `nack_storm_backpressure` overruns a tiny
//! retransmit ring with and without the send window.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mmpi_core::{expect_coll, BcastAlgorithm, Communicator};
use mmpi_netsim::cluster::ClusterConfig;
use mmpi_netsim::ids::HostId;
use mmpi_netsim::params::{FaultParams, NetParams};
use mmpi_netsim::SimDuration;
use mmpi_transport::{
    run_sim_world_stats, Comm, RecvError, RepairConfig, SimCommConfig, WorldStats,
};

fn storm_trial(n: usize, srm: bool, seed: u64) -> WorldStats {
    let mut cfg = SimCommConfig::default();
    let repair = RepairConfig::sim_default().with_seed(seed);
    cfg.repair = Some(if srm { repair } else { repair.without_srm() });
    let cluster = ClusterConfig::new(n, NetParams::fast_ethernet_switch().with_loss(0.10), seed)
        .with_start_skew(SimDuration::from_micros(50));
    let (_, stats) = run_sim_world_stats(&cluster, &cfg, |c| {
        let mut comm = Communicator::new(c).with_bcast(BcastAlgorithm::McastBinary);
        let mut buf = if comm.rank() == 0 {
            vec![0x5A; 3000]
        } else {
            vec![0u8; 3000]
        };
        expect_coll(comm.bcast(0, &mut buf));
        expect_coll(comm.barrier());
        assert!(buf.iter().all(|&b| b == 0x5A), "bcast corrupted data");
        comm.transport_mut().compute(Duration::from_micros(10));
    })
    .expect("storm trial failed");
    stats
}

/// The §8 storm on heterogeneous links: hosts `h % 4 == 3` receive
/// every frame 4–12 ms late, far past the fixed 2 ms solicitation
/// timer. Fixed timers solicit traffic that is merely still in flight;
/// the RTT-adapted ones stretch per peer.
fn hetero_trial(n: usize, adaptive: bool, seed: u64) -> WorldStats {
    let faults = FaultParams {
        drop_prob: 0.10,
        per_link_extra_delay: (0..n)
            .filter(|h| h % 4 == 3)
            .map(|h| {
                (
                    HostId(h as u32),
                    SimDuration::from_nanos(4_000_000 * (1 + (h / 16) as u64)),
                )
            })
            .collect(),
        ..Default::default()
    };
    let mut cfg = SimCommConfig::default();
    let repair = RepairConfig::sim_default().with_seed(seed);
    cfg.repair = Some(if adaptive {
        repair.with_adaptive()
    } else {
        repair
    });
    let cluster = ClusterConfig::new(
        n,
        NetParams::fast_ethernet_switch().with_faults(faults),
        seed,
    );
    let (_, stats) = run_sim_world_stats(&cluster, &cfg, |c| {
        let mut comm = Communicator::new(c).with_bcast(BcastAlgorithm::McastBinary);
        for round in 0..3u8 {
            let mut buf = if comm.rank() == 0 {
                vec![round; 3000]
            } else {
                vec![0u8; 3000]
            };
            expect_coll(comm.bcast(0, &mut buf));
            assert!(buf.iter().all(|&b| b == round), "bcast corrupted data");
            expect_coll(comm.barrier());
        }
    })
    .expect("hetero trial failed");
    stats
}

/// The §9.4 overrun: a 64-message unicast stream through an 8-record
/// ring at 10% loss. Without the send window, capacity eviction loses
/// history and receives fail `Unavailable`; with it, the sender stalls
/// until ACK horizons free the ring. Returns the receiver's
/// `Unavailable` count alongside the stats.
fn backpressure_trial(window: bool, seed: u64) -> (u64, WorldStats) {
    const TAG: u32 = 77;
    const MSGS: usize = 64;
    let mut rc = RepairConfig::sim_default().with_seed(seed);
    rc.buffer_cap = 8;
    if window {
        rc = rc
            .with_send_window(4 * 1024)
            .with_horizon_interval(Duration::from_micros(500));
    }
    let cfg = SimCommConfig {
        repair: Some(rc),
        ..Default::default()
    };
    let params = NetParams::fast_ethernet_switch().with_loss(0.10);
    let (report, stats) =
        run_sim_world_stats(&ClusterConfig::new(2, params, seed), &cfg, |mut c| {
            if c.rank() == 0 {
                for i in 0..MSGS {
                    c.send(1, TAG, vec![i as u8; 1024]);
                }
                0u64
            } else {
                let mut unavailable = 0u64;
                for _ in 0..MSGS {
                    match c.recv_match(0, TAG) {
                        Ok(_) => {}
                        Err(RecvError::Unavailable { .. }) => unavailable += 1,
                        Err(e) => panic!("unexpected recv error: {e:?}"),
                    }
                }
                unavailable
            }
        })
        .expect("backpressure trial failed");
    (report.outputs[1], stats)
}

fn bench_nack_storm(c: &mut Criterion) {
    let mut g = c.benchmark_group("nack_storm_3kB_10pct_switch");
    g.sample_size(10);
    for n in [4usize, 16, 64] {
        for srm in [true, false] {
            let label = if srm { "suppress_on" } else { "suppress_off" };
            // Report the deterministic repair-traffic counters once per
            // case — the sub-linearity evidence next to the timing.
            let s = storm_trial(n, srm, 1);
            println!(
                "# nack_storm n={n} {label}: drops={} nacks={} suppressed={} \
                 overheard={} retransmits={} repairs_suppressed={}",
                s.total_drops(),
                s.repair.nacks_sent,
                s.repair.nacks_suppressed,
                s.repair.nacks_overheard,
                s.repair.retransmits_sent,
                s.repair.repairs_suppressed,
            );
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| storm_trial(n, srm, 1));
            });
        }
    }
    g.finish();
}

fn bench_hetero(c: &mut Criterion) {
    let mut g = c.benchmark_group("nack_storm_hetero");
    g.sample_size(10);
    for n in [16usize, 64] {
        for adaptive in [false, true] {
            let label = if adaptive { "adaptive" } else { "fixed" };
            let s = hetero_trial(n, adaptive, 1);
            println!(
                "# nack_storm_hetero n={n} {label}: drops={} delayed={} nacks={} \
                 retransmits={} rtt_samples={} horizons={}",
                s.total_drops(),
                s.net.link_delayed_frames,
                s.repair.nacks_sent,
                s.repair.retransmits_sent,
                s.repair.rtt_samples,
                s.repair.horizons_sent,
            );
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| hetero_trial(n, adaptive, 1));
            });
        }
    }
    g.finish();
}

fn bench_backpressure(c: &mut Criterion) {
    let mut g = c.benchmark_group("nack_storm_backpressure");
    g.sample_size(10);
    for window in [false, true] {
        let label = if window { "window_on" } else { "window_off" };
        let (unavailable, s) = backpressure_trial(window, 5);
        println!(
            "# nack_storm_backpressure {label}: unavailable={unavailable} \
             stalls={} acked_freed={} unavail_sent={} retransmits={}",
            s.repair.send_window_stalls,
            s.repair.acked_records_freed,
            s.repair.unavailable_sent,
            s.repair.retransmits_sent,
        );
        g.bench_with_input(BenchmarkId::new(label, 2usize), &2usize, |b, _| {
            b.iter(|| backpressure_trial(window, 5));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_nack_storm, bench_hetero, bench_backpressure);
criterion_main!(benches);
