//! # mmpi-bench — benchmark harness for the `mcast-mpi` reproduction
//!
//! * `cargo run -p mmpi-bench --release --bin figures` regenerates every
//!   figure of the paper (tables + CSV + shape checks).
//! * `cargo bench -p mmpi-bench` runs the criterion benches: one per
//!   paper figure plus micro-benches of the simulator and wire format.

// Bench *library* code is unsafe-free; the GlobalAlloc instrumentation
// lives in bins/tests, which carry their own SAFETY comments.
#![forbid(unsafe_code)]
