//! Record the `BENCH_3.json` before/after baseline for the zero-copy
//! datagram path.
//!
//! "Before" is a faithful reimplementation of the seed (pre-zero-copy)
//! wire path — per-chunk `Vec<Vec<u8>>` split, zero-filled reassembly
//! buffer, payload-copying retransmit record, clone-and-resplit NACK
//! replay — measured by the same loop as the current implementation, so
//! the comparison is apples-to-apples on whatever machine this runs on:
//!
//! ```text
//! cargo run -q --release -p mmpi-bench --bin record_datagram_baseline [out.json]
//! ```
//!
//! A counting global allocator additionally reports heap allocations per
//! message, the evidence behind the "zero per-chunk allocations in
//! steady state" acceptance line (the per-message count must not grow
//! with the chunk count).

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mmpi_wire::{
    split_message, Assembler, Bytes, Header, MsgKind, RetransmitBuffer, SendDst, HEADER_LEN,
};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` — every contract (layout
// validity, pointer provenance) is forwarded unchanged; the counter is
// a lock-free atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY (all three methods): caller upholds GlobalAlloc's
    // contract; we forward the exact same arguments to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) } // SAFETY: forwarded contract.
    }

    // SAFETY: see `alloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) } // SAFETY: forwarded contract.
    }

    // SAFETY: see `alloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) } // SAFETY: forwarded contract.
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

// --- the seed implementation, verbatim behaviour -------------------------

#[allow(clippy::too_many_arguments)]
fn seed_split(
    kind: MsgKind,
    context: u32,
    src_rank: u32,
    tag: u32,
    seq: u64,
    payload: &[u8],
    max_chunk: usize,
) -> Vec<Vec<u8>> {
    let msg_len = payload.len() as u32;
    let chunk_count = payload.len().div_ceil(max_chunk).max(1) as u32;
    (0..chunk_count)
        .map(|index| {
            let start = index as usize * max_chunk;
            let end = (start + max_chunk).min(payload.len());
            let chunk = &payload[start..end];
            let header = Header {
                kind,
                context,
                src_rank,
                tag,
                seq,
                msg_len,
                chunk_index: index,
                chunk_count,
                chunk_len: chunk.len() as u32,
            };
            // The seed built a BytesMut then copied out with `to_vec()`.
            let mut buf = Vec::with_capacity(HEADER_LEN + chunk.len());
            header.encode(&mut buf);
            buf.extend_from_slice(chunk);
            buf.to_vec()
        })
        .collect()
}

struct SeedPartial {
    received: Vec<bool>,
    remaining: u32,
    buffer: Vec<u8>,
}

#[derive(Default)]
struct SeedAssembler {
    partial: HashMap<(u32, u64), SeedPartial>,
}

impl SeedAssembler {
    fn feed(&mut self, d: &[u8]) -> Option<Vec<u8>> {
        let (h, chunk) = Header::decode(d).unwrap();
        if h.chunk_count == 1 {
            return Some(chunk.to_vec());
        }
        let key = (h.src_rank, h.seq);
        let e = self.partial.entry(key).or_insert_with(|| SeedPartial {
            received: vec![false; h.chunk_count as usize],
            remaining: h.chunk_count,
            buffer: vec![0; h.msg_len as usize],
        });
        let idx = h.chunk_index as usize;
        if e.received[idx] {
            return None;
        }
        let off = if h.chunk_index + 1 < h.chunk_count {
            idx * h.chunk_len as usize
        } else {
            h.msg_len as usize - h.chunk_len as usize
        };
        e.received[idx] = true;
        e.remaining -= 1;
        e.buffer[off..off + chunk.len()].copy_from_slice(chunk);
        if e.remaining == 0 {
            return Some(self.partial.remove(&key).unwrap().buffer);
        }
        None
    }
}

/// The seed retransmit record: one full payload copy per recorded send.
struct SeedRecord {
    seq: u64,
    kind: MsgKind,
    tag: u32,
    payload: Vec<u8>,
}

// --- measurement ---------------------------------------------------------

fn time_us(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    #[allow(clippy::disallowed_methods)] // bench harness: wall time is the measurement
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn allocs_per(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..iters {
        f();
    }
    (ALLOCS.load(Ordering::Relaxed) - before) / iters as u64
}

struct Row {
    id: String,
    bytes: usize,
    before_us: f64,
    after_us: f64,
}

fn mib_s(bytes: usize, us: f64) -> f64 {
    bytes as f64 / us * 1e6 / (1 << 20) as f64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_3.json".to_string());
    const TAG: u32 = 7;
    let mut rows: Vec<Row> = Vec::new();

    // split + assemble, both chunkings.
    for (size, chunk, iters) in [
        (1024usize, 1472usize, 20_000usize),
        (65_536, 1472, 5_000),
        (1_048_576, 1472, 400),
        (65_536, 60_000, 5_000),
        (1_048_576, 60_000, 400),
    ] {
        let raw: Vec<u8> = (0..size).map(|i| (i * 131) as u8).collect();
        let shared = Bytes::from(raw.clone());
        let before_us = time_us(iters, || {
            let dgs = seed_split(MsgKind::Data, 0, 1, TAG, 3, &raw, chunk);
            let mut asm = SeedAssembler::default();
            let mut out = None;
            for d in &dgs {
                if let Some(m) = asm.feed(d) {
                    out = Some(m);
                }
            }
            std::hint::black_box(out.unwrap());
        });
        let after_us = time_us(iters, || {
            let dgs = split_message(MsgKind::Data, 0, 1, TAG, 3, &shared, chunk);
            let mut asm = Assembler::new();
            let mut out = None;
            for d in &dgs {
                if let Some(m) = asm.feed(d).unwrap() {
                    out = Some(m);
                }
            }
            std::hint::black_box(out.unwrap());
        });
        rows.push(Row {
            id: format!("split_assemble/{size}/chunk{chunk}"),
            bytes: size,
            before_us,
            after_us,
        });
    }

    // retransmit record.
    for size in [65_536usize, 1_048_576] {
        let raw: Vec<u8> = (0..size).map(|i| (i * 131) as u8).collect();
        let dgs = split_message(MsgKind::Data, 0, 1, TAG, 1, &Bytes::from(raw.clone()), 1472);
        let mut seed_ring: Vec<SeedRecord> = Vec::new();
        let before_us = time_us(2_000, || {
            if seed_ring.len() >= 8 {
                seed_ring.remove(0);
            }
            seed_ring.push(SeedRecord {
                seq: 1,
                kind: MsgKind::Data,
                tag: TAG,
                payload: raw.to_vec(),
            });
            std::hint::black_box(seed_ring.len());
        });
        let mut rtx = RetransmitBuffer::new(8);
        let after_us = time_us(2_000, || {
            rtx.record(1, SendDst::Multicast, TAG, MsgKind::Data, &dgs);
            std::hint::black_box(rtx.len());
        });
        rows.push(Row {
            id: format!("record/{size}"),
            bytes: size,
            before_us,
            after_us,
        });
    }

    // NACK replay to n requesters (sender-side work only, as in the
    // transports' repair loop).
    {
        let size = 65_536usize;
        let raw: Vec<u8> = (0..size).map(|i| (i * 131) as u8).collect();
        let dgs = split_message(MsgKind::Data, 0, 1, TAG, 1, &Bytes::from(raw.clone()), 1472);
        let mut rtx = RetransmitBuffer::new(8);
        rtx.record(1, SendDst::Multicast, TAG, MsgKind::Data, &dgs);
        let seed_rec = SeedRecord {
            seq: 1,
            kind: MsgKind::Data,
            tag: TAG,
            payload: raw.clone(),
        };
        for n in [4usize, 16, 64] {
            let before_us = time_us(1_000, || {
                let mut sent = 0usize;
                for _req in 0..n {
                    // Seed repair loop: clone the payload out of the ring,
                    // then re-split it into fresh wire datagrams.
                    let pl = seed_rec.payload.clone();
                    for d in seed_split(seed_rec.kind, 0, 1, seed_rec.tag, seed_rec.seq, &pl, 1472)
                    {
                        sent += d.len();
                    }
                }
                std::hint::black_box(sent);
            });
            let after_us = time_us(1_000, || {
                let mut sent = 0usize;
                for req in 0..n as u32 {
                    for r in rtx.matching(req, TAG) {
                        for d in &r.datagrams {
                            sent += std::hint::black_box(d.clone()).len();
                        }
                    }
                }
                std::hint::black_box(sent);
            });
            rows.push(Row {
                id: format!("nack_replay/65536/n{n}"),
                bytes: size * n,
                before_us,
                after_us,
            });
        }
    }

    // Allocation counts per message: must be constant in the chunk count
    // for the new path ("zero per-chunk heap allocations").
    let mut alloc_rows = Vec::new();
    for (chunks, chunk) in [(2usize, 60_000usize), (45, 1472)] {
        let size = 65_536usize;
        let raw: Vec<u8> = (0..size).map(|i| (i * 131) as u8).collect();
        let shared = Bytes::from(raw.clone());
        let before = allocs_per(500, || {
            let dgs = seed_split(MsgKind::Data, 0, 1, TAG, 3, &raw, chunk);
            let mut asm = SeedAssembler::default();
            for d in &dgs {
                std::hint::black_box(asm.feed(d));
            }
        });
        let after = allocs_per(500, || {
            let dgs = split_message(MsgKind::Data, 0, 1, TAG, 3, &shared, chunk);
            let mut asm = Assembler::new();
            for d in &dgs {
                std::hint::black_box(asm.feed(d).unwrap());
            }
        });
        alloc_rows.push((chunks, before, after));
    }

    // Render JSON by hand (no serde in the offline workspace).
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"pr\": 3,");
    let _ = writeln!(j, "  \"bench\": \"datagram_path\",");
    let _ = writeln!(
        j,
        "  \"method\": \"cargo run -q --release -p mmpi-bench --bin record_datagram_baseline\","
    );
    let _ = writeln!(
        j,
        "  \"note\": \"before = seed wire path (per-chunk Vec<Vec<u8>> split, zero-filled reassembly, payload-copying record, clone+resplit replay), reimplemented verbatim in the recorder and measured by the same loop as the current zero-copy Bytes path\","
    );
    let _ = writeln!(j, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"id\": \"{}\", \"before_us\": {:.3}, \"after_us\": {:.3}, \"before_mib_s\": {:.0}, \"after_mib_s\": {:.0}, \"speedup\": {:.2}}}{}",
            r.id,
            r.before_us,
            r.after_us,
            mib_s(r.bytes, r.before_us),
            mib_s(r.bytes, r.after_us),
            r.before_us / r.after_us,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"allocations_per_message\": [");
    for (i, (chunks, before, after)) in alloc_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"id\": \"split_assemble 64KiB, {chunks} chunks\", \"before\": {before}, \"after\": {after}}}{}",
            if i + 1 < alloc_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let sa64 = rows
        .iter()
        .find(|r| r.id == "split_assemble/65536/chunk60000")
        .expect("present");
    let sa64_mtu = rows
        .iter()
        .find(|r| r.id == "split_assemble/65536/chunk1472")
        .expect("present");
    let (a2, a45) = (alloc_rows[0].2, alloc_rows[1].2);
    let _ = writeln!(j, "  \"acceptance\": {{");
    let _ = writeln!(
        j,
        "    \"split_assemble_64KiB_default_chunking_speedup\": {:.2},",
        sa64.before_us / sa64.after_us
    );
    let _ = writeln!(
        j,
        "    \"split_assemble_64KiB_mtu_chunking_speedup\": {:.2},",
        sa64_mtu.before_us / sa64_mtu.after_us
    );
    let _ = writeln!(j, "    \"per_message_allocs_2_chunks\": {a2},");
    let _ = writeln!(j, "    \"per_message_allocs_45_chunks\": {a45},");
    let _ = writeln!(
        j,
        "    \"per_chunk_allocs_steady_state\": {}",
        if a45 <= a2 + 2 { "0" } else { "-1" }
    );
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");

    std::fs::write(&out_path, &j).expect("write baseline json");
    println!("{j}");
    eprintln!("wrote {out_path}");
}
