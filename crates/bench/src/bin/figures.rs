//! Regenerate every figure of the paper.
//!
//! ```text
//! cargo run -p mmpi-bench --release --bin figures             # all figures
//! cargo run -p mmpi-bench --release --bin figures -- --fig 7  # one figure
//! cargo run -p mmpi-bench --release --bin figures -- --trials 5
//! cargo run -p mmpi-bench --release --bin figures -- --out target/figures
//! ```
//!
//! Prints the median latency per point (the line the paper draws) as a
//! table, writes per-figure CSVs (medians + every raw sample for the
//! scatter), and finishes with a shape-check summary comparing the
//! qualitative claims of the paper against the regenerated data.

use std::path::PathBuf;

use mmpi_cluster::experiment::{loss_sweep, render_loss_table, render_scale_table, scale_sweep};
use mmpi_cluster::figures::{
    all_figures, crossover_point, loss_figure_base, loss_figure_rates, render_table, run_figure,
    write_csv, write_loss_csv, FigureData,
};
use mmpi_core::{expect_coll, AllgatherAlgorithm, BcastAlgorithm, Communicator};
use mmpi_netsim::cluster::ClusterConfig;
use mmpi_netsim::params::NetParams;
use mmpi_transport::{run_sim_world, SimCommConfig};

struct Args {
    figs: Option<Vec<u32>>,
    trials: usize,
    out: PathBuf,
    ext: bool,
    loss: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        figs: None,
        trials: 25,
        out: PathBuf::from("target/figures"),
        ext: false,
        loss: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fig" => {
                let v = it.next().expect("--fig needs a number (7-13)");
                args.figs
                    .get_or_insert_with(Vec::new)
                    .push(v.parse().expect("figure number"));
            }
            "--trials" => {
                args.trials = it
                    .next()
                    .expect("--trials needs a count")
                    .parse()
                    .expect("trial count");
            }
            "--out" => {
                args.out = PathBuf::from(it.next().expect("--out needs a path"));
            }
            "--ext" => args.ext = true,
            "--no-loss" => args.loss = false,
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [--fig N]... [--trials T] [--out DIR] [--ext] [--no-loss]\n\
                     --ext adds the beyond-the-paper extension experiments\n\
                     (multicast allgather scaling, VIA-like fabric);\n\
                     --no-loss skips the figloss lossy-recovery sweep"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The paper's qualitative claims, checked against regenerated data.
fn shape_checks(datas: &[FigureData]) -> Vec<(String, bool)> {
    let mut checks = Vec::new();
    let by_id = |id: &str| datas.iter().find(|d| d.spec.id == id);
    let med = |d: &FigureData, s: usize, i: usize| d.series[s].points[i].median;
    let last = |d: &FigureData| d.spec.xaxis.values().len() - 1;

    for id in ["fig07", "fig08", "fig09", "fig10"] {
        if let Some(d) = by_id(id) {
            // Series order: 0 = mpich, 1 = linear, 2 = binary.
            checks.push((
                format!("{id}: mpich wins at 0 bytes"),
                med(d, 0, 0) < med(d, 1, 0) && med(d, 0, 0) < med(d, 2, 0),
            ));
            let l = last(d);
            checks.push((
                format!("{id}: both mcast variants win at 5000 bytes"),
                med(d, 1, l) < med(d, 0, l) && med(d, 2, l) < med(d, 0, l),
            ));
            let cx = crossover_point(d, 2, 0);
            checks.push((
                format!("{id}: binary/mpich crossover within 500..=2500 bytes (at {cx:?})"),
                cx.map(|x| (500..=2500).contains(&x)).unwrap_or(false),
            ));
        }
    }
    if let Some(d) = by_id("fig11") {
        // Series: 0 mpich/hub, 1 mpich/switch, 2 binary/switch, 3 binary/hub.
        let l = last(d);
        checks.push((
            "fig11: mcast(hub) <= mcast(switch) at every size".into(),
            (0..=l).all(|i| med(d, 3, i) <= med(d, 2, i)),
        ));
        checks.push((
            "fig11: mpich(hub) > mpich(switch) for large messages".into(),
            med(d, 0, l) > med(d, 1, l),
        ));
    }
    if let Some(d) = by_id("fig12") {
        // Series: 0/1/2 = mpich 9/6/3, 3/4/5 = linear 9/6/3.
        let l = last(d);
        let lin_gap_small = med(d, 3, 1) - med(d, 5, 1);
        let lin_gap_large = med(d, 3, l) - med(d, 5, l);
        let mpich_gap_small = med(d, 0, 1) - med(d, 2, 1);
        let mpich_gap_large = med(d, 0, l) - med(d, 2, l);
        checks.push((
            "fig12: linear 3->9 process gap ~constant in size".into(),
            lin_gap_large < lin_gap_small * 2.0 + 50.0,
        ));
        checks.push((
            "fig12: mpich 3->9 process gap grows with size".into(),
            mpich_gap_large > mpich_gap_small * 2.0,
        ));
        checks.push((
            "fig12: linear beats mpich at 9 procs for large messages".into(),
            med(d, 3, l) < med(d, 0, l),
        ));
    }
    if let Some(d) = by_id("fig13") {
        // Series: 0 = multicast, 1 = MPICH; x = 2..9 processes.
        let xs = d.spec.xaxis.values();
        let wins = xs
            .iter()
            .enumerate()
            .filter(|&(i, _)| med(d, 0, i) < med(d, 1, i))
            .count();
        checks.push((
            format!(
                "fig13: multicast barrier wins for most N ({wins}/{} points)",
                xs.len()
            ),
            wins * 2 > xs.len(),
        ));
        let gap_first = med(d, 1, 2) - med(d, 0, 2); // N = 4
        let gap_last = med(d, 1, xs.len() - 1) - med(d, 0, xs.len() - 1); // N = 9
        checks.push((
            "fig13: barrier gap grows with N".into(),
            gap_last > gap_first,
        ));
    }
    checks
}

fn main() {
    let args = parse_args();
    let figs = all_figures();
    let selected: Vec<_> = figs
        .into_iter()
        .filter(|f| {
            args.figs
                .as_ref()
                .map(|want| want.iter().any(|n| f.id == format!("fig{n:02}").as_str()))
                .unwrap_or(true)
        })
        .collect();
    if selected.is_empty() {
        eprintln!("no matching figures (valid: 7..13)");
        std::process::exit(2);
    }

    let mut datas = Vec::new();
    for spec in &selected {
        eprintln!(
            "running {} ({} series x {} points x {} trials)...",
            spec.id,
            spec.series.len(),
            spec.xaxis.values().len(),
            args.trials
        );
        #[allow(clippy::disallowed_methods)] // bench harness: wall time is the measurement
        let t0 = std::time::Instant::now();
        let data = run_figure(spec, args.trials);
        eprintln!("  done in {:.1}s", t0.elapsed().as_secs_f64());
        println!("{}", render_table(&data));
        write_csv(&data, &args.out).expect("write CSV");
        datas.push(data);
    }

    println!("shape checks (paper's qualitative claims):");
    let checks = shape_checks(&datas);
    let mut failed = 0;
    for (desc, ok) in &checks {
        println!("  [{}] {desc}", if *ok { "PASS" } else { "FAIL" });
        if !ok {
            failed += 1;
        }
    }
    if checks.is_empty() {
        println!("  (run more figures for shape checks)");
    }
    if args.loss && args.figs.is_none() {
        loss_figure(&args);
    }
    println!(
        "\nCSV written to {} ({} figures)",
        args.out.display(),
        datas.len()
    );
    if args.ext {
        extension_experiments();
    }
    if failed > 0 {
        eprintln!("{failed} shape check(s) FAILED");
        std::process::exit(1);
    }
}

/// The figloss lossy-recovery figure (ROADMAP "loss figures"): re-run
/// the paper's binary multicast broadcast under injected per-link loss,
/// with the NACK/retransmit repair loop armed, and tabulate latency
/// against recovery effort. Lossy trials are slower to simulate, so the
/// sweep caps its trial count.
fn loss_figure(args: &Args) {
    let n = 8;
    let bytes = 3000;
    let trials = args.trials.min(10);
    eprintln!(
        "running figloss ({} rates x {trials} trials, n={n}, {bytes} B)...",
        loss_figure_rates().len()
    );
    #[allow(clippy::disallowed_methods)] // bench harness: wall time is the measurement
    let t0 = std::time::Instant::now();
    let base = loss_figure_base(n, bytes).with_trials(trials);
    let rows = loss_sweep(&base, &loss_figure_rates());
    eprintln!("  done in {:.1}s", t0.elapsed().as_secs_f64());
    println!(
        "{}",
        render_loss_table(
            &format!("figloss — mcast-binary bcast, {n} procs, {bytes} B, switch"),
            &rows
        )
    );
    write_loss_csv(&rows, &args.out).expect("write figloss CSV");
    let lossless = rows.first().expect("rates are non-empty");
    assert_eq!(lossless.counters.drops, 0, "0% loss must drop nothing");
    for r in &rows[1..] {
        // Low rates over few trials may legitimately drop nothing; once
        // the fabric did drop frames, the repair loop must have resent.
        assert!(
            r.counters.drops == 0 || r.counters.retransmits > 0,
            "loss rate {} dropped {} frames but sent no retransmissions",
            r.loss,
            r.counters.drops
        );
    }

    // The repair scale axis: the same lossy broadcast across growing
    // process counts, showing the SRM suppression keeping solicit
    // traffic sub-linear in N.
    let scale_ns = [4usize, 8, 16, 32];
    eprintln!("running repair scale sweep (n in {scale_ns:?}, 10% loss)...");
    #[allow(clippy::disallowed_methods)] // bench harness: wall time is the measurement
    let t0 = std::time::Instant::now();
    let scale_rows = scale_sweep(
        &loss_figure_base(n, bytes)
            .with_trials(trials.min(3))
            .with_loss(0.10),
        &scale_ns,
    );
    eprintln!("  done in {:.1}s", t0.elapsed().as_secs_f64());
    println!(
        "{}",
        render_scale_table(
            &format!("mcast-binary bcast, {bytes} B, 10% loss, switch"),
            &scale_rows
        )
    );
}

/// Beyond-the-paper experiments (DESIGN.md §7): many-to-many collectives
/// over multicast and the VIA-like low-latency fabric of the paper's
/// future-work section.
fn extension_experiments() {
    println!("\n== extension: allgather algorithms (switch, 1 kB blocks) ==");
    println!(
        "{:>4}  {:>16}  {:>12}  {:>16}",
        "N", "gather+bcast us", "ring us", "multicast us"
    );
    for n in [3usize, 6, 9, 12] {
        let run = |algo: AllgatherAlgorithm| {
            let cluster = ClusterConfig::new(n, NetParams::fast_ethernet_switch(), 11);
            run_sim_world(&cluster, &SimCommConfig::default(), move |c| {
                let mut comm = Communicator::new(c).with_allgather(algo);
                let mine = vec![comm.rank() as u8; 1000];
                let parts = expect_coll(comm.allgather(&mine));
                assert_eq!(parts.len(), n);
            })
            .unwrap()
            .makespan
            .as_micros_f64()
        };
        println!(
            "{n:>4}  {:>16.1}  {:>12.1}  {:>16.1}",
            run(AllgatherAlgorithm::GatherBcast),
            run(AllgatherAlgorithm::Ring),
            run(AllgatherAlgorithm::Multicast),
        );
    }

    println!("\n== extension: VIA-like low-latency fabric (8 procs, strict posted-recv) ==");
    println!(
        "{:>8}  {:>12}  {:>14}",
        "bytes", "mpich us", "mcast-binary us"
    );
    for bytes in [0usize, 1000, 4000] {
        let run = |algo: BcastAlgorithm| {
            let cluster = ClusterConfig::new(8, NetParams::via_like(), 13);
            run_sim_world(&cluster, &SimCommConfig::default(), move |c| {
                let mut comm = Communicator::new(c).with_bcast(algo);
                let mut buf = if comm.rank() == 0 {
                    vec![1; bytes]
                } else {
                    vec![0; bytes]
                };
                expect_coll(comm.bcast(0, &mut buf));
            })
            .unwrap()
            .makespan
            .as_micros_f64()
        };
        println!(
            "{bytes:>8}  {:>12.1}  {:>14.1}",
            run(BcastAlgorithm::MpichBinomial),
            run(BcastAlgorithm::McastBinary),
        );
    }
}
