//! The paper's data path on a *real* network: UDP + IP multicast sockets.
//!
//! ```text
//! cargo run --release --example real_udp_multicast
//! ```
//!
//! Runs five ranks as threads on the loopback interface, broadcasting with
//! the scouted multicast algorithm and with the MPICH binomial tree, and
//! reports wall-clock medians. Skips gracefully where the kernel or
//! container forbids multicast.

use std::time::{Duration, Instant};

use mcast_mpi::core::{expect_coll, BcastAlgorithm, Communicator};
use mcast_mpi::transport::{multicast_available, run_udp_world, Comm, UdpConfig};

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn bench(algo: BcastAlgorithm, base_port: u16, bytes: usize, reps: usize) -> f64 {
    let cfg = UdpConfig::loopback(base_port);
    let times = run_udp_world(5, &cfg, move |c| {
        let mut comm = Communicator::new(c).with_bcast(algo);
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let mut buf = if comm.rank() == 0 {
                vec![0xC3; bytes]
            } else {
                vec![0; bytes]
            };
            #[allow(clippy::disallowed_methods)] // live-network demo: wall time
            let t0 = Instant::now();
            expect_coll(comm.bcast(0, &mut buf));
            samples.push(t0.elapsed().as_secs_f64() * 1e6);
            assert!(buf.iter().all(|&b| b == 0xC3));
            // Settle between reps so runs do not overlap.
            comm.transport_mut().compute(Duration::from_millis(1));
        }
        median(samples)
    })
    .expect("UDP world failed");
    // The paper's metric: the slowest process.
    times.into_iter().fold(f64::MIN, f64::max)
}

fn main() {
    if !multicast_available(47_000) {
        eprintln!(
            "IP multicast is not available in this environment; \
             nothing to demonstrate. (UDP unicast still works — see the \
             simulator examples.)"
        );
        return;
    }
    println!("5 ranks as threads, loopback interface, real sockets\n");
    println!(
        "{:>8}  {:>16}  {:>16}",
        "bytes", "mcast-binary(us)", "mpich-tree(us)"
    );
    let mut port = 47_100;
    for bytes in [100usize, 1000, 10_000, 60_000] {
        let mcast = bench(BcastAlgorithm::McastBinary, port, bytes, 21);
        let mpich = bench(BcastAlgorithm::MpichBinomial, port + 40, bytes, 21);
        println!("{bytes:>8}  {mcast:>16.1}  {mpich:>16.1}");
        port += 100;
    }
    println!(
        "\nNote: on loopback the kernel copies multicast datagrams to every\n\
         subscribed socket, so the bandwidth saving of real multicast shows\n\
         up as fewer syscalls rather than fewer wire crossings."
    );
}
