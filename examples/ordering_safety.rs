//! The paper's §4 correctness arguments, demonstrated.
//!
//! ```text
//! cargo run --example ordering_safety
//! ```
//!
//! 1. **Ordering**: several processes broadcast to the same multicast
//!    group back-to-back; because no root can send before it received the
//!    previous broadcast, order is preserved without extra machinery.
//! 2. **The hazard scouts prevent**: under the strict "receive must be
//!    posted" loss model, a naive multicast to a busy receiver is lost —
//!    the scouted algorithm is immune.

use std::time::Duration;

use mcast_mpi::core::{expect_coll, BcastAlgorithm, Communicator};
use mcast_mpi::netsim::cluster::ClusterConfig;
use mcast_mpi::netsim::params::NetParams;
use mcast_mpi::transport::{run_sim_world, Comm, SimCommConfig};

fn ordering_demo() {
    println!("-- ordering across back-to-back broadcasts (paper sec. 4) --");
    let cluster = ClusterConfig::new(4, NetParams::fast_ethernet_switch(), 1);
    let report = run_sim_world(&cluster, &SimCommConfig::default(), |c| {
        let mut comm = Communicator::new(c).with_bcast(BcastAlgorithm::McastBinary);
        // Roots 1, 2, 3 broadcast in program order.
        let mut seen = Vec::new();
        for root in [1usize, 2, 3] {
            let mut buf = if comm.rank() == root {
                vec![root as u8]
            } else {
                Vec::new()
            };
            expect_coll(comm.bcast(root, &mut buf));
            seen.push(buf[0]);
        }
        seen
    })
    .unwrap();
    for (rank, seen) in report.outputs.iter().enumerate() {
        println!("  rank {rank} observed broadcasts in order {seen:?}");
        assert_eq!(seen, &vec![1, 2, 3]);
    }
    println!("  order preserved on every rank.\n");
}

fn loss_demo() {
    println!("-- why scouts exist: strict posted-receive loss model --");
    let mut params = NetParams::fast_ethernet_switch();
    params.host.strict_posted_recv = true;

    // Naive multicast (PVM-style, no scouts): the busy receiver loses the
    // first copy; the root must retransmit until acked.
    let cluster = ClusterConfig::new(3, params.clone(), 2);
    let naive = run_sim_world(&cluster, &SimCommConfig::default(), |c| {
        let mut comm = Communicator::new(c).with_bcast(BcastAlgorithm::PvmAck);
        if comm.rank() == 2 {
            // Busy computing when the multicast lands.
            comm.transport_mut().compute(Duration::from_millis(2));
        }
        let mut buf = if comm.rank() == 0 {
            vec![7; 1000]
        } else {
            vec![0; 1000]
        };
        expect_coll(comm.bcast(0, &mut buf));
        buf[0]
    })
    .unwrap();
    println!(
        "  ack/retransmit broadcast: delivered to all ({:?}), but {} multicast \
         datagram(s) were lost to the busy receiver and had to be resent",
        naive.outputs, naive.stats.unposted_recv_drops
    );

    let scouted = run_sim_world(&cluster, &SimCommConfig::default(), |c| {
        let mut comm = Communicator::new(c).with_bcast(BcastAlgorithm::McastBinary);
        if comm.rank() == 2 {
            comm.transport_mut().compute(Duration::from_millis(2));
        }
        let mut buf = if comm.rank() == 0 {
            vec![7; 1000]
        } else {
            vec![0; 1000]
        };
        expect_coll(comm.bcast(0, &mut buf));
        buf[0]
    })
    .unwrap();
    println!(
        "  scouted broadcast:        delivered to all ({:?}), {} losses — the \
         root multicasts only after every receiver proved readiness",
        scouted.outputs, scouted.stats.unposted_recv_drops
    );
    assert_eq!(scouted.stats.unposted_recv_drops, 0);
}

fn main() {
    ordering_demo();
    loss_demo();
}
