//! Locate the MPICH/multicast crossover point (paper Figs. 7-8).
//!
//! ```text
//! cargo run --release --example bcast_crossover
//! ```
//!
//! Sweeps message sizes on both fabrics and prints where the multicast
//! broadcast starts beating MPICH — small messages are dominated by the
//! scout synchronization, large ones by the N-1 redundant copies MPICH
//! puts on the wire.

use mcast_mpi::cluster::experiment::{run_experiment, Experiment, Fabric, Workload};
use mcast_mpi::core::BcastAlgorithm;

fn main() {
    let n = 4;
    let sizes = [0usize, 250, 500, 750, 1000, 1500, 2000, 3000, 4000, 5000];
    for fabric in [Fabric::Hub, Fabric::Switch] {
        println!("\n== {} processes over the {:?} ==", n, fabric);
        println!(
            "{:>8}  {:>12}  {:>12}  {:>8}",
            "bytes", "mpich (us)", "mcast (us)", "winner"
        );
        let mut crossover = None;
        for &bytes in &sizes {
            let run = |algo| {
                run_experiment(
                    &Experiment::new(n, fabric, Workload::Bcast { algo, bytes }).with_trials(9),
                )
                .summary
                .median
            };
            let mpich = run(BcastAlgorithm::MpichBinomial);
            let mcast = run(BcastAlgorithm::McastBinary);
            let winner = if mcast < mpich { "mcast" } else { "mpich" };
            if mcast < mpich && crossover.is_none() {
                crossover = Some(bytes);
            }
            println!("{bytes:>8}  {mpich:>12.1}  {mcast:>12.1}  {winner:>8}");
        }
        match crossover {
            Some(x) => println!("-> multicast wins from ~{x} bytes (paper: ~1000 B)"),
            None => println!("-> no crossover in this range"),
        }
    }
}
