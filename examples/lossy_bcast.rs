//! Broadcast on a *lossy* simulated fabric, recovered by the
//! NACK/retransmit repair loop (`docs/PROTOCOL.md`).
//!
//! ```text
//! cargo run --release --example lossy_bcast            # default loss sweep
//! MMPI_LOSS=0.25 cargo run --release --example lossy_bcast   # one rate
//! ```
//!
//! What to expect in the output: one table row per loss rate (0%, 1% and
//! 10% by default, or just the `MMPI_LOSS` rate if that environment
//! variable is set). Every row reports `digest ok` — the broadcast
//! payload arrives byte-identical at every rank no matter the loss —
//! while the `drops` / `nacks` / `retransmits` columns grow with the
//! loss rate and the median latency climbs as recovery rounds stack up.
//! The 0% row stays all-zero: with nothing to repair, the repair loop
//! costs nothing. Runs are deterministic: same binary, same numbers.

use mcast_mpi::core::{expect_coll, Communicator};
use mcast_mpi::netsim::cluster::ClusterConfig;
use mcast_mpi::netsim::params::NetParams;
use mcast_mpi::transport::{run_sim_world_stats, SimCommConfig};

const N: usize = 6;
const BYTES: usize = 4096;

fn run_at(loss: f64) {
    let params = NetParams::fast_ethernet_switch().with_loss(loss);
    let cluster = ClusterConfig::new(N, params, 0xD15C0);
    let (report, stats) =
        run_sim_world_stats(&cluster, &SimCommConfig::default().with_repair(), |c| {
            let mut comm = Communicator::new(c);
            let mut buf = if comm.rank() == 0 {
                vec![0xAB; BYTES]
            } else {
                vec![0; BYTES]
            };
            let t0 = comm.transport().now();
            expect_coll(comm.bcast(0, &mut buf));
            expect_coll(comm.barrier());
            let elapsed = (comm.transport().now() - t0).as_micros_f64();
            (buf == vec![0xAB; BYTES], elapsed)
        })
        .expect("lossy broadcast must recover");

    let ok = report.outputs.iter().all(|&(ok, _)| ok);
    let worst = report
        .outputs
        .iter()
        .map(|&(_, us)| us)
        .fold(f64::MIN, f64::max);
    println!(
        "{:>5.1}%  digest {}   bcast+barrier = {:>8.1} us   drops = {:>3}  nacks = {:>3}  retransmits = {:>3}",
        loss * 100.0,
        if ok { "ok " } else { "BAD" },
        worst,
        stats.total_drops(),
        stats.repair.nacks_sent,
        stats.repair.retransmits_sent,
    );
    assert!(ok, "recovery must deliver identical bytes");
}

fn main() {
    println!(
        "{N} processes, switched Fast Ethernet, {BYTES} B broadcast + barrier\n\
         (set MMPI_LOSS=<0..1> to pick a single loss rate)\n"
    );
    let rates: Vec<f64> = match std::env::var("MMPI_LOSS") {
        Ok(v) => {
            let p: f64 = v.parse().expect("MMPI_LOSS must be a float in [0, 1)");
            // At 1.0 even NACKs and retransmits die on the wire, so no
            // repair can ever complete — reject instead of hanging.
            assert!(
                (0.0..1.0).contains(&p),
                "MMPI_LOSS must be in [0, 1): a fabric that drops everything \
                 is unrecoverable by definition"
            );
            vec![p]
        }
        Err(_) => vec![0.0, 0.01, 0.10],
    };
    for loss in rates {
        run_at(loss);
    }
    println!(
        "\nEvery run completes with correct digests: lost frames are re-\n\
         requested by NACK and re-sent from the sender's retransmit ring\n\
         (protocol walkthrough in docs/PROTOCOL.md)."
    );
}
