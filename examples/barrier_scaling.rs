//! Barrier scaling with process count (paper Fig. 13).
//!
//! ```text
//! cargo run --release --example barrier_scaling
//! ```
//!
//! The MPICH three-phase barrier sends `2(N-K) + K*log2(K)` point-to-point
//! messages; the paper's multicast barrier sends `N-1` scouts plus one
//! multicast release. On the shared hub the difference compounds with
//! contention.

use mcast_mpi::cluster::experiment::{run_experiment, Experiment, Fabric, Workload};
use mcast_mpi::core::{cost, BarrierAlgorithm};

fn main() {
    println!("MPI_Barrier over the shared Fast Ethernet hub\n");
    println!(
        "{:>5}  {:>13}  {:>13}  {:>12}  {:>12}",
        "N", "mpich (us)", "mcast (us)", "mpich msgs", "mcast msgs"
    );
    for n in 2..=9usize {
        let run = |algo| {
            run_experiment(
                &Experiment::new(n, Fabric::Hub, Workload::Barrier { algo }).with_trials(15),
            )
            .summary
            .median
        };
        let mpich = run(BarrierAlgorithm::Mpich);
        let mcast = run(BarrierAlgorithm::McastBinary);
        println!(
            "{n:>5}  {mpich:>13.1}  {mcast:>13.1}  {:>12}  {:>12}",
            cost::mpich_barrier_messages(n as u64),
            cost::mcast_barrier_messages(n as u64),
        );
    }
    println!(
        "\nThe message-count columns are the paper's closed-form counts; the\n\
         latency columns are measured on the simulated testbed (median of 15\n\
         seeded trials with 50 us start skew)."
    );
}
