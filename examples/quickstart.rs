//! Quickstart: broadcast and barrier over IP multicast on a simulated
//! Fast Ethernet cluster.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Runs a 6-process SPMD program twice — once with the paper's
//! multicast-binary algorithms, once with the MPICH point-to-point
//! baselines — and prints the virtual-time cost of each collective.
//!
//! What to expect in the output: two lines, one per algorithm family,
//! each reporting the worst-rank `bcast(4kB)` and `barrier` latencies in
//! virtual microseconds plus the total frame count the run put on the
//! wire. The multicast line should show *both* a lower broadcast latency
//! and markedly fewer frames (the 4 kB payload crosses the wire once
//! instead of five times) — that difference is the paper's whole point.
//! The numbers are deterministic: re-running prints identical values.
//!
//! This example runs on a lossless fabric. To see the same broadcast
//! survive injected frame loss (`NetParams::with_loss` / the
//! `MMPI_LOSS` environment variable), run
//! `cargo run --release --example lossy_bcast`.

use mcast_mpi::core::{expect_coll, BarrierAlgorithm, BcastAlgorithm, Communicator};
use mcast_mpi::netsim::cluster::ClusterConfig;
use mcast_mpi::netsim::params::NetParams;
use mcast_mpi::transport::{run_sim_world, SimCommConfig};

fn run(label: &str, bcast: BcastAlgorithm, barrier: BarrierAlgorithm) {
    let cluster = ClusterConfig::new(6, NetParams::fast_ethernet_switch(), 42);
    let report = run_sim_world(&cluster, &SimCommConfig::default(), move |c| {
        let mut comm = Communicator::new(c).with_bcast(bcast).with_barrier(barrier);

        // Rank 0 broadcasts 4 kB to everyone.
        let mut buf = if comm.rank() == 0 {
            b"the quick brown fox".repeat(215) // ~4 kB
        } else {
            vec![0; 19 * 215]
        };
        let t0 = comm.transport().now();
        expect_coll(comm.bcast(0, &mut buf));
        let bcast_us = (comm.transport().now() - t0).as_micros_f64();
        assert!(buf.starts_with(b"the quick brown fox"));

        // Then everyone synchronizes.
        let t1 = comm.transport().now();
        expect_coll(comm.barrier());
        let barrier_us = (comm.transport().now() - t1).as_micros_f64();
        (bcast_us, barrier_us)
    })
    .expect("simulation failed");

    let bcast_max = report
        .outputs
        .iter()
        .map(|(b, _)| *b)
        .fold(f64::MIN, f64::max);
    let barrier_max = report
        .outputs
        .iter()
        .map(|(_, b)| *b)
        .fold(f64::MIN, f64::max);
    println!(
        "{label:<28} bcast(4kB) = {bcast_max:7.1} us   barrier = {barrier_max:7.1} us   \
         frames on wire = {}",
        report.stats.frames_sent
    );
}

fn main() {
    println!("6 processes, simulated 100 Mbps switched Fast Ethernet\n");
    run(
        "multicast (paper)",
        BcastAlgorithm::McastBinary,
        BarrierAlgorithm::McastBinary,
    );
    run(
        "MPICH point-to-point",
        BcastAlgorithm::MpichBinomial,
        BarrierAlgorithm::Mpich,
    );
    println!(
        "\nThe multicast implementation sends the 4 kB payload once instead of\n\
         five times, which is the paper's whole point."
    );
}
