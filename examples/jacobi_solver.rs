//! A realistic SPMD application on the collective API: distributed Jacobi
//! iteration for a diagonally dominant linear system.
//!
//! ```text
//! cargo run --release --example jacobi_solver
//! ```
//!
//! Each rank owns a block of rows. Every iteration needs the *whole*
//! current solution vector on every rank — an `allgather` — and a global
//! residual norm — an `allreduce`. Both composites ride on the
//! communicator's broadcast algorithm, so the multicast machinery of the
//! paper accelerates a real numerical kernel, not just a microbenchmark.

use mcast_mpi::core::{expect_coll, Communicator};
use mcast_mpi::netsim::cluster::ClusterConfig;
use mcast_mpi::netsim::params::NetParams;
use mcast_mpi::transport::{run_sim_world, SimCommConfig};

const N: usize = 96; // unknowns
const RANKS: usize = 6;
const MAX_ITERS: usize = 200;
const TOL: f64 = 1e-10;

/// Dense diagonally dominant test matrix A and rhs b (same on all ranks).
fn problem() -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut a = vec![vec![0.0; N]; N];
    let mut b = vec![0.0; N];
    for (i, row) in a.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = if i == j {
                2.0 * N as f64
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            };
        }
        b[i] = (i % 7) as f64 + 1.0;
    }
    (a, b)
}

fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Sum-combine for allreduce over f64 buffers.
#[allow(clippy::ptr_arg)] // must match the `Combine` closure type
fn combine_f64_sum(acc: &mut Vec<u8>, other: &[u8]) {
    assert_eq!(acc.len(), other.len());
    for (a, o) in acc.chunks_exact_mut(8).zip(other.chunks_exact(8)) {
        let s =
            f64::from_le_bytes(a.try_into().unwrap()) + f64::from_le_bytes(o.try_into().unwrap());
        a.copy_from_slice(&s.to_le_bytes());
    }
}

fn main() {
    for (label, multicast) in [
        ("multicast collectives", true),
        ("MPICH p2p collectives", false),
    ] {
        let cluster = ClusterConfig::new(RANKS, NetParams::fast_ethernet_switch(), 3);
        let report = run_sim_world(&cluster, &SimCommConfig::default(), move |c| {
            // `new` configures the paper's multicast algorithms everywhere
            // (multicast bcast, barrier, allgather); `new_mpich` the
            // point-to-point baselines.
            let mut comm = if multicast {
                Communicator::new(c)
            } else {
                Communicator::new_mpich(c)
            };
            let (a, b) = problem();
            let rows = N / RANKS;
            let my0 = comm.rank() * rows;

            let mut x = vec![0.0f64; N];
            let mut iters = 0;
            for _ in 0..MAX_ITERS {
                iters += 1;
                // Local sweep over my rows.
                let mut local = vec![0.0f64; rows];
                for (li, i) in (my0..my0 + rows).enumerate() {
                    let mut sigma = 0.0;
                    for j in 0..N {
                        if j != i {
                            sigma += a[i][j] * x[j];
                        }
                    }
                    local[li] = (b[i] - sigma) / a[i][i];
                }
                // Exchange blocks: allgather the new solution.
                let parts = expect_coll(comm.allgather(&f64s_to_bytes(&local)));
                let mut new_x = Vec::with_capacity(N);
                for p in &parts {
                    new_x.extend(bytes_to_f64s(p));
                }
                // Global squared-residual via allreduce.
                let local_diff: f64 = (my0..my0 + rows).map(|i| (new_x[i] - x[i]).powi(2)).sum();
                let total =
                    expect_coll(comm.allreduce(f64s_to_bytes(&[local_diff]), &combine_f64_sum));
                x = new_x;
                if bytes_to_f64s(&total)[0].sqrt() < TOL {
                    break;
                }
            }

            // Verify the solution locally.
            let max_residual = (0..N)
                .map(|i| {
                    let ax: f64 = (0..N).map(|j| a[i][j] * x[j]).sum();
                    (ax - b[i]).abs()
                })
                .fold(0.0f64, f64::max);
            (iters, max_residual)
        })
        .expect("solver run failed");

        let (iters, resid) = report.outputs[0];
        assert!(resid < 1e-6, "solver failed to converge: residual {resid}");
        println!(
            "{label:<24} converged in {iters:3} iterations, |Ax-b|_inf = {resid:.2e}, \
             virtual time = {:8.1} us, frames = {}",
            report.makespan.as_micros_f64(),
            report.stats.frames_sent
        );
    }
    println!(
        "\nSame numerics, same convergence — the multicast collectives just\n\
         move the per-iteration allgather/allreduce traffic once instead of\n\
         once per receiver."
    );
}
